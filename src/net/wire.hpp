#pragma once

/// cuzc-wire-v1 — the length-prefixed binary protocol spoken between
/// cuzc::net::NetServer and NetClient (see DESIGN.md §7).
///
/// Every frame is a fixed 24-byte little-endian header followed by
/// `payload_len` payload bytes:
///
///   u32 magic        0x43575A43 ("CZWC")
///   u16 version      1
///   u16 type         FrameType
///   u64 request_id   client-chosen; echoed on the response
///   u32 payload_len  payload bytes that follow
///   u32 checksum     lane-striped FNV over the payload bytes, folded to
///                    32 bits (see frame_checksum)
///
/// A connection opens with a Hello / HelloAck exchange carrying the
/// protocol name ("cuzc-wire-v1") so version skew fails fast, then any
/// number of Request frames may be in flight concurrently; the server
/// responds with one Response frame per request, in completion order.
/// Decoding is strictly bounds-checked: a truncated or oversized frame is
/// rejected (and, where the stream stays synchronized, skipped) without
/// tearing down the process.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request.hpp"
#include "zc/report.hpp"

namespace cuzc::net {

inline constexpr std::uint32_t kMagic = 0x43575A43u;  // "CZWC"
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::string_view kProtocolName = "cuzc-wire-v1";

enum class FrameType : std::uint16_t {
    kHello = 1,     ///< client -> server: protocol name
    kHelloAck = 2,  ///< server -> client: protocol name + server limits
    kRequest = 3,   ///< client -> server: serialized AssessRequest
    kResponse = 4,  ///< server -> client: serialized AssessResponse
    kGoodbye = 5,   ///< client -> server: drain my in-flight, then close
};

/// Any framing/decoding violation: truncated payload, field count that
/// disagrees with the declared shape, over-limit sizes, bad handshake.
struct WireError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

struct FrameHeader {
    std::uint32_t magic = kMagic;
    std::uint16_t version = kVersion;
    std::uint16_t type = 0;
    std::uint64_t request_id = 0;
    std::uint32_t payload_len = 0;
    std::uint32_t checksum = 0;

    static constexpr std::size_t kSize = 24;
};

/// The wire frame checksum: FNV-1a-64 striped over 8 independent lanes,
/// each consuming one 64-bit word per round (lanes are seeded distinctly,
/// folded together FNV-style at the end, and the 64-bit fold is xor-folded
/// down to 32 bits). Integrity-equivalent to plain FNV for the corruptions
/// a socket can produce, but the 8 independent multiply chains process
/// 64 bytes per round instead of 1 — frame payloads carry whole fields,
/// and a serial checksum would dominate loopback serving cost.
[[nodiscard]] std::uint32_t frame_checksum(std::span<const std::uint8_t> bytes) noexcept;
/// Plain byte-wise FNV-1a-64 (report digests; small inputs).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                                    std::uint64_t h = 14695981039346656037ull) noexcept;

/// Little-endian append-only payload builder.
class Writer {
public:
    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v);
    void f64(double v);
    void f32_span(std::span<const float> v);  ///< count-prefixed (u64)
    void str(std::string_view v);             ///< length-prefixed (u32)
    void bytes(std::span<const std::uint8_t> v);  ///< count-prefixed (u64)
    void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }
    void zeros(std::size_t n) { buf_.resize(buf_.size() + n); }

    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
    [[nodiscard]] std::span<const std::uint8_t> view() const noexcept { return buf_; }

private:
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian payload reader: every accessor throws
/// WireError("truncated payload") instead of reading past the end, and
/// count-prefixed accessors validate the count against the bytes that are
/// actually left before allocating.
class Reader {
public:
    explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint16_t u16();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] std::int32_t i32();
    [[nodiscard]] double f64();
    [[nodiscard]] std::vector<float> f32_span();
    [[nodiscard]] std::string str();
    [[nodiscard]] std::vector<std::uint8_t> bytes();

    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
    /// Throws unless every payload byte was consumed (trailing garbage is
    /// as suspect as truncation).
    void expect_end() const;

private:
    void need(std::size_t n) const;
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

// --- Payload codecs ----------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_hello();
/// Throws WireError when the payload does not carry kProtocolName.
void decode_hello(std::span<const std::uint8_t> payload);

struct HelloAck {
    std::size_t max_frame_payload = 0;
    std::size_t max_inflight_per_connection = 0;
};
[[nodiscard]] std::vector<std::uint8_t> encode_hello_ack(const HelloAck& ack);
[[nodiscard]] HelloAck decode_hello_ack(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_request(const serve::AssessRequest& req);
[[nodiscard]] serve::AssessRequest decode_request(std::span<const std::uint8_t> payload);

/// Profiler counters (CuzcResult's KernelStats) do not cross the wire;
/// the decoded response carries the assessment report and the request's
/// service-side metadata (flags, shed list, spans, retries, ...).
[[nodiscard]] std::vector<std::uint8_t> encode_response(const serve::AssessResponse& resp);
[[nodiscard]] serve::AssessResponse decode_response(std::span<const std::uint8_t> payload);

/// Canonical byte encoding of a report (the response codec's inner block);
/// two reports are bit-identical iff these encodings are equal.
[[nodiscard]] std::vector<std::uint8_t> encode_report(const zc::AssessmentReport& report);

/// Fold a report into a running FNV-1a-64 digest (replay artifacts use
/// this to prove remote and in-process replays produced identical bits).
[[nodiscard]] std::uint64_t digest_report(std::uint64_t h, const zc::AssessmentReport& report);

// --- Frame assembly ----------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_frame(FrameType type, std::uint64_t request_id,
                                                     std::span<const std::uint8_t> payload);

/// Single-buffer frame builders for the payloads that carry whole fields:
/// the payload is encoded after a header-sized gap and the header patched
/// in place, so the bytes are written once instead of payload + frame copy.
[[nodiscard]] std::vector<std::uint8_t> encode_request_frame(const serve::AssessRequest& req,
                                                             std::uint64_t request_id);
[[nodiscard]] std::vector<std::uint8_t> encode_response_frame(const serve::AssessResponse& resp,
                                                              std::uint64_t request_id);

/// Incremental frame extractor over a byte stream. Feed received bytes,
/// then drain frames with next(). An oversized frame (payload_len above
/// the limit) is reported once and its payload bytes are then discarded
/// as they arrive, so the connection survives with bounded memory; a
/// checksum mismatch is reported with the frame skipped. Only kBadMagic /
/// kBadVersion leave the stream unsynchronized — the caller must close.
class FrameAssembler {
public:
    explicit FrameAssembler(std::size_t max_payload) : max_payload_(max_payload) {}

    enum class Status {
        kNeedMore,     ///< no complete frame buffered yet
        kFrame,        ///< header+payload valid
        kOversize,     ///< payload_len > limit; payload being discarded
        kBadChecksum,  ///< framing intact, payload corrupt; frame dropped
        kBadMagic,     ///< stream is not cuzc-wire; close the connection
        kBadVersion,   ///< wire version mismatch; close the connection
    };
    struct Result {
        Status status = Status::kNeedMore;
        FrameHeader header;
        std::vector<std::uint8_t> payload;  ///< next() only
        /// next_view() only: the payload in place inside the stream buffer.
        std::span<const std::uint8_t> view;
    };

    void feed(std::span<const std::uint8_t> data);
    /// Zero-copy ingest: expose `n` writable bytes at the buffer tail for
    /// recv() to fill, then commit(m) the bytes actually received (m <= n).
    /// Skipped oversize payload bytes are still discarded on commit.
    [[nodiscard]] std::span<std::uint8_t> writable(std::size_t n);
    void commit(std::size_t n);
    [[nodiscard]] Result next();
    /// Zero-copy variant: a kFrame result carries `view` (aliasing the
    /// stream buffer) instead of `payload`. The view is invalidated by the
    /// next feed/writable/next call — decode before pulling more bytes.
    [[nodiscard]] Result next_view();
    [[nodiscard]] std::size_t buffered() const noexcept { return end_ - consumed_; }
    /// Total bytes (header + payload) of the in-limit frame at the head of
    /// the stream, or 0 when no parsable in-limit header is buffered yet.
    /// Read-gating on max(read_buffer, pending_frame_bytes()) lets a valid
    /// frame larger than the soft read buffer finish assembling instead of
    /// wedging the connection with the payload half-buffered.
    [[nodiscard]] std::size_t pending_frame_bytes() const noexcept;

private:
    void compact();
    void ensure_room(std::size_t n);
    std::size_t max_payload_;
    /// Storage; [consumed_, end_) are the valid bytes. The dead prefix is
    /// reclaimed lazily (compact) so draining many buffered frames is not
    /// quadratic in memmoves.
    std::vector<std::uint8_t> buf_;
    std::size_t consumed_ = 0;
    std::size_t end_ = 0;
    /// Oversize-skip mode: payload bytes of the rejected frame still owed.
    std::uint64_t skip_ = 0;
};

}  // namespace cuzc::net
