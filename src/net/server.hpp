#pragma once

/// cuzc::net::NetServer — the socket front-end of the assessment service.
///
/// A single poll()-driven event-loop thread owns the listening socket and
/// every connection; decoded requests are submitted to an embedded
/// serve::AssessService (which runs its own device-worker pool), and the
/// loop settles the returned futures back into response frames. See
/// DESIGN.md §7 for the protocol, backpressure, and drain semantics.

#include <cstdint>
#include <memory>
#include <string>

#include "serve/service.hpp"
#include "serve/telemetry.hpp"

namespace cuzc::net {

struct NetServerConfig {
    std::string bind_address = "127.0.0.1";
    /// 0 binds an ephemeral port; NetServer::port() reports the real one.
    std::uint16_t port = 0;
    std::size_t max_connections = 64;
    /// Admission backpressure: a connection with this many requests in
    /// flight stops being read (POLLIN interest dropped) until responses
    /// drain; TCP flow control pushes back on the client from there.
    std::size_t max_inflight_per_connection = 64;
    /// Frames whose payload exceeds this are rejected (and skipped)
    /// without closing the connection.
    std::size_t max_frame_payload = 64ull << 20;
    /// Concurrent v2 streaming sessions one connection may hold open; a
    /// StreamBegin past the cap is settled immediately with a rejected
    /// response. Streams are deliberately outside the in-flight read gate
    /// (feeding a stream *requires* reading), so this is their own
    /// admission bound.
    std::size_t max_streams_per_connection = 8;
    /// Unparsed inbound bytes a connection may buffer before it stops
    /// being read (second backpressure stage, before frame decode).
    std::size_t max_read_buffer = 8ull << 20;
    /// Outbound bytes a connection may queue before it is declared a slow
    /// client and disconnected.
    std::size_t max_write_buffer = 64ull << 20;
    /// A connection must complete the Hello handshake within this wall
    /// clock or it is closed. 0 disables the check.
    double handshake_timeout_s = 5.0;
    /// A handshaken connection with no traffic in either direction for
    /// this long is closed. 0 disables the check.
    double idle_timeout_s = 0;
    /// SO_RCVBUF/SO_SNDBUF request for accepted sockets (the kernel clamps
    /// to its rmem_max/wmem_max). Frames carry whole fields, so a buffer
    /// that can absorb a pipelined burst saves drain round-trips.
    /// 0 keeps the kernel default.
    std::size_t socket_buffer_bytes = 4ull << 20;
    /// The embedded assessment service (devices, cache, faults, ...).
    serve::ServiceConfig service{};
};

class NetServer {
public:
    /// Binds and listens (throws std::runtime_error on failure); the event
    /// loop does not run until run() or start() is called.
    explicit NetServer(NetServerConfig cfg);
    /// Initiates a drain if still running, then joins.
    ~NetServer();

    NetServer(const NetServer&) = delete;
    NetServer& operator=(const NetServer&) = delete;

    /// The bound port (resolves an ephemeral request).
    [[nodiscard]] std::uint16_t port() const noexcept;

    /// Run the event loop on the calling thread until shutdown() — the
    /// graceful-drain sequence finishes before it returns.
    void run();
    /// Spawn the event loop on a background thread (no-op if running).
    void start();

    /// Initiate graceful drain from any thread or a signal handler (only
    /// async-signal-safe calls): stop accepting, settle every in-flight
    /// request, flush responses, then close. Idempotent.
    void shutdown() noexcept;

    [[nodiscard]] serve::NetTelemetry telemetry() const;
    [[nodiscard]] serve::ServiceTelemetry service_telemetry() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace cuzc::net
