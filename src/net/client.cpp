#include "client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "wire.hpp"

namespace cuzc::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct NetClient::Impl {
    NetClientConfig cfg;
    int fd = -1;
    FrameAssembler assembler;
    std::deque<std::vector<std::uint8_t>> write_q;
    std::size_t front_off = 0;
    std::size_t write_bytes = 0;  ///< unsent bytes across write_q
    std::uint64_t next_request_id = 1;
    std::unordered_map<std::uint64_t, serve::AssessResponse> responses;
    std::deque<std::uint64_t> response_order;
    std::size_t outstanding = 0;
    HelloAck server_limits{};
    bool hello_acked = false;
    /// Client-side view of an open streaming session, mirroring the
    /// StreamBegin declaration so violations fail fast locally.
    struct OpenStream {
        std::uint64_t volume = 0;
        std::uint64_t declared_chunks = 0;
        std::uint64_t next_seq = 0;
        std::uint64_t elements = 0;
    };
    std::unordered_map<std::uint64_t, OpenStream> streams;
    std::uint64_t n_bytes_tx = 0, n_bytes_rx = 0, n_frames_tx = 0, n_frames_rx = 0;

    explicit Impl(NetClientConfig c) : cfg(std::move(c)), assembler(cfg.max_frame_payload) {}

    void connect() {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) throw std::runtime_error("net: socket() failed");
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (cfg.socket_buffer_bytes > 0) {
            const int sz = static_cast<int>(
                std::min<std::size_t>(cfg.socket_buffer_bytes, 1ull << 30));
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
            ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg.port);
        if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
            // Not a literal address: resolve the name.
            addrinfo hints{};
            hints.ai_family = AF_INET;
            hints.ai_socktype = SOCK_STREAM;
            addrinfo* res = nullptr;
            if (::getaddrinfo(cfg.host.c_str(), nullptr, &hints, &res) != 0 || res == nullptr) {
                throw WireError("cannot resolve host '" + cfg.host + "'");
            }
            addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
            ::freeaddrinfo(res);
        }
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
            errno != EINPROGRESS) {
            throw WireError(std::string("connect failed: ") + std::strerror(errno));
        }
        pollfd p{fd, POLLOUT, 0};
        const int rc = ::poll(&p, 1, static_cast<int>(cfg.connect_timeout_s * 1000));
        if (rc <= 0) throw WireError("connect timed out");
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            throw WireError(std::string("connect failed: ") + std::strerror(err));
        }
    }

    void require_streaming() const {
        if (server_limits.version < kVersionStreaming) {
            throw WireError("streaming requires a v2-negotiated connection");
        }
    }

    void handshake() {
        enqueue(FrameType::kHello, 0, encode_hello(cfg.protocol_version));
        const auto t0 = Clock::now();
        while (!hello_acked) {
            pump_once(0.05);
            if (cfg.response_timeout_s > 0 && seconds_since(t0) > cfg.response_timeout_s) {
                throw WireError("handshake timed out");
            }
        }
    }

    void enqueue(FrameType type, std::uint64_t id, std::vector<std::uint8_t> payload) {
        enqueue_frame(encode_frame(type, id, payload));
    }

    void enqueue_frame(std::vector<std::uint8_t> frame) {
        queue_frame(std::move(frame));
        flush();
    }

    void queue_frame(std::vector<std::uint8_t> frame) {
        write_bytes += frame.size();
        write_q.push_back(std::move(frame));
        ++n_frames_tx;
    }

    /// Nonblocking write pass (scatter-gather across queued frames);
    /// throws on a hard socket error.
    void flush() {
        while (!write_q.empty()) {
            iovec iov[64];
            int n_iov = 0;
            std::size_t off = front_off;
            for (auto it = write_q.begin(); it != write_q.end() && n_iov < 64; ++it) {
                iov[n_iov].iov_base = it->data() + off;
                iov[n_iov].iov_len = it->size() - off;
                ++n_iov;
                off = 0;
            }
            msghdr msg{};
            msg.msg_iov = iov;
            msg.msg_iovlen = static_cast<std::size_t>(n_iov);
            const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) return;
                if (errno == EINTR) continue;
                throw WireError(std::string("send failed: ") + std::strerror(errno));
            }
            n_bytes_tx += static_cast<std::uint64_t>(n);
            write_bytes -= static_cast<std::size_t>(n);
            std::size_t left = static_cast<std::size_t>(n);
            while (left > 0) {
                const std::size_t avail = write_q.front().size() - front_off;
                if (left >= avail) {
                    left -= avail;
                    write_q.pop_front();
                    front_off = 0;
                } else {
                    front_off += left;
                    left = 0;
                }
            }
        }
    }

    /// One poll round servicing both directions. Returns true when at
    /// least one response frame was received.
    bool pump_once(double timeout_s) {
        if (fd < 0) throw WireError("connection closed");
        flush();
        pollfd p{fd, POLLIN, 0};
        if (!write_q.empty()) p.events |= POLLOUT;
        const int rc = ::poll(&p, 1, std::max(0, static_cast<int>(timeout_s * 1000)));
        if (rc < 0) {
            if (errno == EINTR) return false;
            throw WireError(std::string("poll failed: ") + std::strerror(errno));
        }
        if (rc == 0) return false;
        if (p.revents & POLLOUT) flush();
        bool got = false;
        if (p.revents & (POLLIN | POLLHUP | POLLERR)) got = read_pass();
        return got;
    }

    /// Nonblocking recv pass draining whatever the socket holds right now.
    bool read_pass() {
        if (fd < 0) throw WireError("connection closed");
        for (;;) {
            const std::span<std::uint8_t> room = assembler.writable(64 * 1024);
            const ssize_t n = ::recv(fd, room.data(), room.size(), 0);
            if (n > 0) {
                n_bytes_rx += static_cast<std::uint64_t>(n);
                assembler.commit(static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                ::close(fd);
                fd = -1;
                break;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            ::close(fd);
            fd = -1;
            break;
        }
        const bool got = drain_frames();
        if (fd < 0 && !got) {
            throw WireError("server closed the connection");
        }
        return got;
    }

    bool drain_frames() {
        bool got = false;
        for (;;) {
            FrameAssembler::Result res = assembler.next_view();
            switch (res.status) {
                case FrameAssembler::Status::kNeedMore:
                    return got;
                case FrameAssembler::Status::kBadMagic:
                case FrameAssembler::Status::kBadVersion:
                    throw WireError("server sent an unrecognized frame header");
                case FrameAssembler::Status::kOversize:
                case FrameAssembler::Status::kBadChecksum:
                    throw WireError("server frame failed integrity checks");
                case FrameAssembler::Status::kFrame: {
                    ++n_frames_rx;
                    const auto type = static_cast<FrameType>(res.header.type);
                    if (type == FrameType::kHelloAck) {
                        server_limits = decode_hello_ack(res.view);
                        hello_acked = true;
                    } else if (type == FrameType::kResponse) {
                        // A duplicate settle for an id still held would
                        // double-push the take_response() order and
                        // double-decrement the pipelining window; keep the
                        // first response, drop the repeat.
                        if (responses.emplace(res.header.request_id, decode_response(res.view))
                                .second) {
                            response_order.push_back(res.header.request_id);
                            if (outstanding > 0) --outstanding;
                            got = true;
                        }
                    } else {
                        throw WireError("server sent an unexpected frame type");
                    }
                    break;
                }
            }
        }
    }
};

NetClient::NetClient(NetClientConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {
    try {
        impl_->connect();
        impl_->handshake();
    } catch (...) {
        if (impl_->fd >= 0) ::close(impl_->fd);
        impl_->fd = -1;
        throw;
    }
}

NetClient::~NetClient() {
    try {
        close();
    } catch (...) {  // destructor must not throw
    }
}

std::uint64_t NetClient::submit(const serve::AssessRequest& req) {
    const std::uint64_t id = impl_->next_request_id++;
    impl_->queue_frame(encode_request_frame(req, id));
    ++impl_->outstanding;
    // Defer the flush until a batch accumulates — one scatter-gather send
    // per ~128 KiB instead of one syscall per request. pump()/wait() flush
    // whatever remains before sleeping.
    if (impl_->write_bytes >= 128 * 1024) {
        impl_->flush();
        // Drain the read side opportunistically (one nonblocking recv pass,
        // no poll) so a pipelined burst never wedges against server
        // backpressure. Piggybacked on the flush cadence: frames still
        // queued locally can't have responses in flight yet, so per-submit
        // recv passes would mostly be wasted syscalls.
        impl_->read_pass();
    }
    return id;
}

std::uint64_t NetClient::stream_begin(const zc::Dims3& dims, const zc::MetricsConfig& cfg,
                                      std::uint64_t chunks) {
    impl_->require_streaming();
    const std::uint64_t volume = dims.volume();
    if (chunks == 0 || chunks > volume) {
        throw WireError("stream_begin: chunk count cannot tile the declared shape");
    }
    StreamBegin sb;
    sb.dims = dims;
    sb.cfg = cfg;
    sb.chunks = chunks;
    sb.total_bytes = volume * 2 * sizeof(float);
    const std::uint64_t id = impl_->next_request_id++;
    impl_->queue_frame(
        encode_frame(FrameType::kStreamBegin, id, encode_stream_begin(sb), kVersionStreaming));
    ++impl_->outstanding;
    impl_->streams.emplace(id, Impl::OpenStream{volume, chunks, 0, 0});
    impl_->flush();
    return id;
}

void NetClient::stream_feed(std::uint64_t id, std::span<const float> orig,
                            std::span<const float> dec) {
    auto it = impl_->streams.find(id);
    if (it == impl_->streams.end()) throw WireError("stream_feed: unknown stream id");
    Impl::OpenStream& st = it->second;
    if (orig.empty() || orig.size() != dec.size()) {
        throw WireError("stream_feed: chunks must be non-empty and paired");
    }
    if (st.next_seq >= st.declared_chunks) {
        throw WireError("stream_feed: more chunks than declared");
    }
    if (st.elements + orig.size() > st.volume) {
        throw WireError("stream_feed: chunk overruns the declared shape");
    }
    // 8 (seq) + two count-prefixed f32 spans; stay within both sides'
    // frame-payload limits so the server never has to oversize-reject.
    const std::size_t payload = 24 + orig.size_bytes() + dec.size_bytes();
    if (payload > impl_->cfg.max_frame_payload ||
        (impl_->server_limits.max_frame_payload > 0 &&
         payload > impl_->server_limits.max_frame_payload)) {
        throw WireError("stream_feed: chunk exceeds the frame payload limit");
    }
    impl_->queue_frame(encode_stream_chunk_frame(id, st.next_seq, orig, dec));
    ++st.next_seq;
    st.elements += orig.size();
    // Same deferred-flush + opportunistic-drain cadence as submit(): the
    // read pass keeps a long chunk train from wedging against a server
    // that has settled our other requests.
    if (impl_->write_bytes >= 128 * 1024) {
        impl_->flush();
        impl_->read_pass();
    }
}

void NetClient::stream_finish(std::uint64_t id) {
    auto it = impl_->streams.find(id);
    if (it == impl_->streams.end()) throw WireError("stream_finish: unknown stream id");
    StreamEnd se;
    se.chunks = it->second.next_seq;
    se.elements = it->second.elements;
    impl_->streams.erase(it);
    impl_->queue_frame(
        encode_frame(FrameType::kStreamEnd, id, encode_stream_end(se), kVersionStreaming));
    impl_->flush();
}

void NetClient::stream_abort(std::uint64_t id) {
    auto it = impl_->streams.find(id);
    if (it == impl_->streams.end()) throw WireError("stream_abort: unknown stream id");
    impl_->streams.erase(it);
    impl_->queue_frame(encode_frame(FrameType::kStreamAbort, id, {}, kVersionStreaming));
    // No response will come; settle the outstanding window locally.
    if (impl_->outstanding > 0) --impl_->outstanding;
    impl_->flush();
}

serve::AssessResponse NetClient::stream_assess(const zc::Dims3& dims,
                                               std::span<const float> orig,
                                               std::span<const float> dec,
                                               const zc::MetricsConfig& cfg,
                                               std::size_t chunk_elems) {
    const std::size_t n = dims.volume();
    if (orig.size() != n || dec.size() != n) {
        throw WireError("stream_assess: fields disagree with the declared shape");
    }
    if (chunk_elems == 0) throw WireError("stream_assess: chunk_elems must be positive");
    const std::uint64_t chunks = (n + chunk_elems - 1) / chunk_elems;
    const std::uint64_t id = stream_begin(dims, cfg, chunks);
    for (std::size_t off = 0; off < n; off += chunk_elems) {
        const std::size_t len = std::min(chunk_elems, n - off);
        stream_feed(id, orig.subspan(off, len), dec.subspan(off, len));
    }
    stream_finish(id);
    return wait(id);
}

serve::AssessResponse NetClient::wait(std::uint64_t id) {
    const auto t0 = Clock::now();
    for (;;) {
        auto it = impl_->responses.find(id);
        if (it != impl_->responses.end()) {
            serve::AssessResponse resp = std::move(it->second);
            impl_->responses.erase(it);
            std::erase(impl_->response_order, id);
            return resp;
        }
        if (impl_->fd < 0) throw WireError("server closed the connection");
        impl_->pump_once(0.05);
        if (impl_->cfg.response_timeout_s > 0 &&
            seconds_since(t0) > impl_->cfg.response_timeout_s) {
            throw WireError("timed out waiting for response");
        }
    }
}

bool NetClient::pump(double timeout_s) { return impl_->pump_once(timeout_s); }

std::optional<std::pair<std::uint64_t, serve::AssessResponse>> NetClient::take_response() {
    if (impl_->response_order.empty()) return std::nullopt;
    const std::uint64_t id = impl_->response_order.front();
    impl_->response_order.pop_front();
    auto it = impl_->responses.find(id);
    if (it == impl_->responses.end()) return std::nullopt;
    serve::AssessResponse resp = std::move(it->second);
    impl_->responses.erase(it);
    return std::make_pair(id, std::move(resp));
}

std::size_t NetClient::outstanding() const noexcept { return impl_->outstanding; }

std::size_t NetClient::server_max_inflight() const noexcept {
    return impl_->server_limits.max_inflight_per_connection;
}

std::uint16_t NetClient::server_protocol_version() const noexcept {
    return impl_->server_limits.version;
}

std::size_t NetClient::server_max_streams() const noexcept {
    return impl_->server_limits.max_streams_per_connection;
}

std::uint64_t NetClient::bytes_tx() const noexcept { return impl_->n_bytes_tx; }
std::uint64_t NetClient::bytes_rx() const noexcept { return impl_->n_bytes_rx; }
std::uint64_t NetClient::frames_tx() const noexcept { return impl_->n_frames_tx; }
std::uint64_t NetClient::frames_rx() const noexcept { return impl_->n_frames_rx; }

void NetClient::close() {
    if (impl_->fd < 0) return;
    try {
        impl_->enqueue(FrameType::kGoodbye, 0, {});
        // Best-effort flush of the goodbye within a short bound.
        const auto t0 = Clock::now();
        while (!impl_->write_q.empty() && seconds_since(t0) < 0.25) {
            pollfd p{impl_->fd, POLLOUT, 0};
            if (::poll(&p, 1, 50) <= 0) break;
            impl_->flush();
        }
    } catch (const WireError&) {  // peer already gone; nothing to drain
    }
    if (impl_->fd >= 0) ::close(impl_->fd);
    impl_->fd = -1;
}

}  // namespace cuzc::net
