#pragma once

/// cuzc::net::NetClient — cuzc-wire client for remote assessment (v1
/// whole-frame requests, and v2 streaming sessions for datasets larger
/// than one frame).
///
/// The client is single-threaded by design (one instance per driving
/// thread): submit() queues request frames, and every pump of the socket
/// services both directions, so a pipelined submit burst can never
/// deadlock against server backpressure — while the server stops reading
/// us (its per-connection in-flight cap), we keep draining its responses.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "serve/request.hpp"

namespace cuzc::net {

struct NetClientConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    double connect_timeout_s = 5.0;
    /// Wall-clock ceiling for wait()/assess() (and the handshake); a pump
    /// that makes no progress for this long throws WireError. 0 = none.
    double response_timeout_s = 300.0;
    std::size_t max_frame_payload = 64ull << 20;
    /// SO_SNDBUF/SO_RCVBUF request (kernel clamps to wmem_max/rmem_max);
    /// sized so a pipelined request burst parks in the kernel instead of
    /// round-tripping through EAGAIN. 0 keeps the kernel default.
    std::size_t socket_buffer_bytes = 4ull << 20;
    /// Wire revision to request in the Hello (2 = "cuzc-wire-v2", enabling
    /// streaming sessions; 1 speaks the original whole-frame protocol
    /// byte-identically). The server echoes the requested revision.
    std::uint16_t protocol_version = 2;
};

class NetClient {
public:
    /// Connects and completes the Hello handshake; throws WireError /
    /// std::runtime_error on refusal, timeout, or protocol mismatch.
    explicit NetClient(NetClientConfig cfg);
    ~NetClient();

    NetClient(const NetClient&) = delete;
    NetClient& operator=(const NetClient&) = delete;

    /// Queue one request; returns its wire request id. The outbound queue
    /// is flushed opportunistically (and fully by wait()/pump()).
    std::uint64_t submit(const serve::AssessRequest& req);

    /// Pump until the response for `id` arrives; out-of-order responses
    /// for other ids are retained for their own wait() calls.
    [[nodiscard]] serve::AssessResponse wait(std::uint64_t id);

    /// Synchronous round-trip convenience.
    [[nodiscard]] serve::AssessResponse assess(const serve::AssessRequest& req) {
        return wait(submit(req));
    }

    // --- v2 streaming sessions (protocol_version >= 2 only) ------------

    /// Open a streaming session: the dataset's shape, the metrics config
    /// (only the pattern-1 reduction family is computed server-side), and
    /// the exact number of stream_feed() calls to follow. Returns the
    /// stream id — also the id wait() settles once stream_finish() is
    /// acknowledged. Throws WireError when the server negotiated v1, or on
    /// a chunk count that cannot tile the declared shape.
    std::uint64_t stream_begin(const zc::Dims3& dims, const zc::MetricsConfig& cfg,
                               std::uint64_t chunks);

    /// Send the next paired slice (element order). Validated client-side
    /// against the declaration (sequence, element budget, frame-payload
    /// fit) so violations fail fast instead of as a remote rejection.
    void stream_feed(std::uint64_t id, std::span<const float> orig, std::span<const float> dec);

    /// Queue StreamEnd; the server's settling response arrives via
    /// wait(id) (rejected responses carry the reason in `error`).
    void stream_finish(std::uint64_t id);

    /// Abandon the stream (fire-and-forget; no response will arrive).
    void stream_abort(std::uint64_t id);

    /// Synchronous convenience: begin → feed `chunk_elems`-sized slices →
    /// finish → wait. orig/dec must both hold dims.volume() elements.
    [[nodiscard]] serve::AssessResponse stream_assess(const zc::Dims3& dims,
                                                      std::span<const float> orig,
                                                      std::span<const float> dec,
                                                      const zc::MetricsConfig& cfg,
                                                      std::size_t chunk_elems);

    /// One bounded poll round: flush pending writes, read what's there.
    /// Returns true if any response arrived.
    bool pump(double timeout_s);

    /// Take any already-received response (no socket activity).
    [[nodiscard]] std::optional<std::pair<std::uint64_t, serve::AssessResponse>> take_response();

    /// Requests submitted whose responses have not been received yet
    /// (received-but-untaken responses do not count; this is the wire
    /// in-flight window that replay pacing bounds).
    [[nodiscard]] std::size_t outstanding() const noexcept;

    /// Server limits learned from the HelloAck.
    [[nodiscard]] std::size_t server_max_inflight() const noexcept;
    /// The wire revision the server acknowledged (1 or 2).
    [[nodiscard]] std::uint16_t server_protocol_version() const noexcept;
    /// Concurrent streams the server allows per connection (0 on v1).
    [[nodiscard]] std::size_t server_max_streams() const noexcept;

    [[nodiscard]] std::uint64_t bytes_tx() const noexcept;
    [[nodiscard]] std::uint64_t bytes_rx() const noexcept;
    [[nodiscard]] std::uint64_t frames_tx() const noexcept;
    [[nodiscard]] std::uint64_t frames_rx() const noexcept;

    /// Send Goodbye and close the socket (also done by the destructor).
    void close();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace cuzc::net
