#include "profiler.hpp"

#include <algorithm>

namespace cuzc::vgpu {

void KernelStats::merge(const KernelStats& other) {
    launches += other.launches;
    grid_syncs += other.grid_syncs;
    blocks += other.blocks;
    threads_per_block = std::max(threads_per_block, other.threads_per_block);
    regs_per_thread = std::max(regs_per_thread, other.regs_per_thread);
    smem_per_block = std::max(smem_per_block, other.smem_per_block);
    global_bytes_read += other.global_bytes_read;
    global_bytes_written += other.global_bytes_written;
    shared_bytes_read += other.shared_bytes_read;
    shared_bytes_written += other.shared_bytes_written;
    shuffle_ops += other.shuffle_ops;
    thread_iters += other.thread_iters;
    lane_ops += other.lane_ops;
    coalescing = std::min(coalescing, other.coalescing);
    serialization = std::max(serialization, other.serialization);
}

void KernelStats::merge_counters(const KernelStats& shard) noexcept {
    regs_per_thread = std::max(regs_per_thread, shard.regs_per_thread);
    smem_per_block = std::max(smem_per_block, shard.smem_per_block);
    global_bytes_read += shard.global_bytes_read;
    global_bytes_written += shard.global_bytes_written;
    shared_bytes_read += shard.shared_bytes_read;
    shared_bytes_written += shard.shared_bytes_written;
    shuffle_ops += shard.shuffle_ops;
    thread_iters += shard.thread_iters;
    lane_ops += shard.lane_ops;
}

void KernelStats::reset_counters() noexcept {
    regs_per_thread = 0;
    smem_per_block = 0;
    global_bytes_read = 0;
    global_bytes_written = 0;
    shared_bytes_read = 0;
    shared_bytes_written = 0;
    shuffle_ops = 0;
    thread_iters = 0;
    lane_ops = 0;
}

KernelStats& Profiler::begin_launch(std::string name) {
    KernelStats stats;
    stats.name = std::move(name);
    stats.launches = 1;
    records_.push_back(std::move(stats));
    return records_.back();
}

KernelStats Profiler::aggregate(const std::string& name) const {
    KernelStats out;
    out.name = name;
    for (const auto& rec : records_) {
        if (rec.name == name) out.merge(rec);
    }
    return out;
}

KernelStats Profiler::total() const {
    KernelStats out;
    out.name = "<total>";
    for (const auto& rec : records_) out.merge(rec);
    return out;
}

std::uint64_t Profiler::launch_count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& rec : records_) n += rec.launches;
    return n;
}

}  // namespace cuzc::vgpu
