#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cuzc::vgpu {

/// Fault classes the virtual device can inject (see FaultPlan). Real GPU
/// serving stacks see all four: allocation failure under memory pressure,
/// silent transfer corruption, kernels aborting (XID errors / ECC traps),
/// and stalls from contention or thermal throttling.
enum class FaultKind : std::uint8_t {
    kAllocFail = 0,      ///< DeviceBuffer construction throws
    kUploadCorrupt = 1,  ///< one bit of one uploaded element flips silently
    kKernelThrow = 2,    ///< a kernel launch throws before any block runs
    kLatency = 3,        ///< a kernel launch stalls before starting
};
inline constexpr std::size_t kFaultKindCount = 4;

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;

/// Exception thrown at an injection point — and the type fault-aware
/// callers (cuzc::serve workers) catch to classify a device failure.
/// `transient()` faults model conditions a retry can clear (a failed
/// allocation under pressure, a sporadic kernel abort); retry ladders must
/// never retry non-transient ones.
class FaultError : public std::runtime_error {
public:
    FaultError(FaultKind kind, bool transient, const std::string& what)
        : std::runtime_error(what), kind_(kind), transient_(transient) {}

    [[nodiscard]] FaultKind kind() const noexcept { return kind_; }
    [[nodiscard]] bool transient() const noexcept { return transient_; }

private:
    FaultKind kind_;
    bool transient_;
};

/// Deterministic, seed-driven fault injection plan for a vgpu::Device.
///
/// Every injection *decision* consumes one event from a counter-indexed
/// splitmix64 stream, so a fixed sequence of device operations produces the
/// same faults on every run and platform — failures found in a test or a
/// trace replay are reproducible from the seed alone. `seed == 0` (the
/// default) disables injection entirely; the hooks then cost one branch.
struct FaultPlan {
    std::uint64_t seed = 0;
    double alloc_fail = 0;      ///< P(DeviceBuffer construction throws)
    double upload_corrupt = 0;  ///< P(an upload flips one bit of one element)
    double kernel_throw = 0;    ///< P(a launch throws before any block runs)
    double latency = 0;         ///< P(a launch stalls latency_ms first)
    double latency_ms = 1.0;    ///< injected stall length
    /// Cap on total injections (all kinds); 0 = unlimited. Models a fault
    /// burst that ends — what a circuit breaker needs to recover from.
    std::uint64_t max_faults = 0;

    [[nodiscard]] bool enabled() const noexcept {
        return seed != 0 &&
               (alloc_fail > 0 || upload_corrupt > 0 || kernel_throw > 0 || latency > 0);
    }

    /// Parse a spec like
    ///   "seed=7,kernel=0.1,alloc=0.05,upload=0.01,latency=0.2,latency_ms=2,max=10"
    /// (keys optional, any order). Throws std::runtime_error on unknown
    /// keys, malformed numbers, or rates outside [0, 1].
    [[nodiscard]] static FaultPlan parse(std::string_view spec);

    /// Plan from the CUZC_FAULTS environment variable; unset or empty
    /// yields a disabled plan.
    [[nodiscard]] static FaultPlan from_env();
};

namespace detail {

/// splitmix64 finalizer — self-contained so the fault stream never depends
/// on another layer's hashing.
[[nodiscard]] constexpr std::uint64_t fault_mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

[[nodiscard]] constexpr double fault_to_unit(std::uint64_t h) noexcept {
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace detail

}  // namespace cuzc::vgpu
