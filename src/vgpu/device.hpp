#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "device_props.hpp"
#include "exec_pool.hpp"
#include "fault.hpp"
#include "profiler.hpp"

namespace cuzc::vgpu {

/// A modeled GPU device: architectural properties plus the profiler that
/// records every kernel launch and host<->device transfer executed on it.
/// Passed by reference everywhere (no global device state). The execution
/// pool holds the device's recycled per-worker arenas, register slabs, and
/// counter shards.
class Device {
public:
    Device() = default;
    explicit Device(DeviceProps props) : props_(props) {}

    [[nodiscard]] const DeviceProps& props() const noexcept { return props_; }
    [[nodiscard]] Profiler& profiler() noexcept { return profiler_; }
    [[nodiscard]] const Profiler& profiler() const noexcept { return profiler_; }
    [[nodiscard]] ExecutionPool& exec_pool() noexcept { return pool_; }

    void note_h2d(std::uint64_t bytes) noexcept { h2d_bytes_ += bytes; }
    void note_d2h(std::uint64_t bytes) noexcept { d2h_bytes_ += bytes; }
    void note_alloc(std::uint64_t bytes) noexcept {
        ++alloc_count_;
        alloc_bytes_ += bytes;
    }
    [[nodiscard]] std::uint64_t h2d_bytes() const noexcept { return h2d_bytes_; }
    [[nodiscard]] std::uint64_t d2h_bytes() const noexcept { return d2h_bytes_; }
    /// Device-memory allocations performed (DeviceBuffer constructions) —
    /// lets reuse-sensitive paths assert "zero per-item allocations".
    [[nodiscard]] std::uint64_t alloc_count() const noexcept { return alloc_count_; }
    [[nodiscard]] std::uint64_t alloc_bytes() const noexcept { return alloc_bytes_; }

    void reset_counters() {
        profiler_.clear();
        h2d_bytes_ = 0;
        d2h_bytes_ = 0;
        alloc_count_ = 0;
        alloc_bytes_ = 0;
    }

    // --- Idle-device accounting ---------------------------------------
    // A device is executed by at most one host thread at a time; these
    // lease bits let a pool owner (e.g. cuzc::serve) find currently-idle
    // devices to shard large jobs onto. The flag is advisory bookkeeping
    // for the owner's scheduler — it does not make Device thread-safe.

    /// Atomically claim an idle device; false if already leased.
    [[nodiscard]] bool try_lease() noexcept {
        bool expected = false;
        if (!leased_.compare_exchange_strong(expected, true, std::memory_order_acquire)) {
            return false;
        }
        ++lease_count_;
        return true;
    }
    void release_lease() noexcept { leased_.store(false, std::memory_order_release); }
    [[nodiscard]] bool leased() const noexcept {
        return leased_.load(std::memory_order_acquire);
    }
    /// Times this device has been claimed (utilization accounting).
    [[nodiscard]] std::uint64_t lease_count() const noexcept { return lease_count_; }

    /// Arm deterministic fault injection (see FaultPlan); resets the event
    /// stream and the per-kind injection counts. Like the rest of Device,
    /// not safe to call concurrently with operations on this device.
    void set_fault_plan(const FaultPlan& plan) noexcept {
        faults_ = plan;
        fault_events_ = 0;
        faults_injected_.fill(0);
    }
    [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return faults_; }

    [[nodiscard]] std::uint64_t faults_injected() const noexcept {
        std::uint64_t total = 0;
        for (const std::uint64_t n : faults_injected_) total += n;
        return total;
    }
    [[nodiscard]] std::uint64_t faults_injected(FaultKind k) const noexcept {
        return faults_injected_[static_cast<std::size_t>(k)];
    }

    /// Injection point for DeviceBuffer construction; throws a transient
    /// FaultError when the plan draws an allocation failure.
    void fault_point_alloc(std::uint64_t bytes) {
        if (!faults_.enabled()) return;
        if (draw_fault(FaultKind::kAllocFail, faults_.alloc_fail)) {
            throw FaultError(FaultKind::kAllocFail, /*transient=*/true,
                             "injected fault: device allocation of " + std::to_string(bytes) +
                                 " bytes failed");
        }
    }

    /// Injection point for uploads: returns a nonzero hash (to derive the
    /// corrupted bit position from) when this upload should be corrupted.
    [[nodiscard]] std::uint64_t fault_point_upload() noexcept {
        if (!faults_.enabled()) return 0;
        if (!draw_fault(FaultKind::kUploadCorrupt, faults_.upload_corrupt)) return 0;
        const std::uint64_t h =
            detail::fault_mix64(faults_.seed ^ (fault_events_ * 0x9e3779b97f4a7c15ull));
        return h ? h : 1;
    }

    /// Injection point entered by `launch`/`coop_launch` before any block
    /// runs: may stall (latency fault) and may throw a transient
    /// FaultError (kernel fault).
    void fault_point_kernel(const std::string& name) {
        if (!faults_.enabled()) return;
        if (draw_fault(FaultKind::kLatency, faults_.latency)) {
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                faults_.latency_ms));
        }
        if (draw_fault(FaultKind::kKernelThrow, faults_.kernel_throw)) {
            throw FaultError(FaultKind::kKernelThrow, /*transient=*/true,
                             "injected fault: kernel '" + name + "' aborted");
        }
    }

private:
    /// One decision of the seed-driven event stream; counts the injection
    /// when it fires and respects the plan's total-injection cap.
    [[nodiscard]] bool draw_fault(FaultKind kind, double rate) noexcept {
        if (rate <= 0) return false;
        const std::uint64_t ev = fault_events_++;
        if (faults_.max_faults != 0 && faults_injected() >= faults_.max_faults) return false;
        const std::uint64_t h = detail::fault_mix64(faults_.seed ^ (ev * 0x2545f4914f6cdd1dull));
        if (detail::fault_to_unit(h) >= rate) return false;
        ++faults_injected_[static_cast<std::size_t>(kind)];
        return true;
    }

    DeviceProps props_{};
    Profiler profiler_{};
    std::uint64_t h2d_bytes_ = 0;
    std::uint64_t d2h_bytes_ = 0;
    std::uint64_t alloc_count_ = 0;
    std::uint64_t alloc_bytes_ = 0;
    std::atomic<bool> leased_{false};
    std::uint64_t lease_count_ = 0;
    FaultPlan faults_{};
    std::uint64_t fault_events_ = 0;
    std::array<std::uint64_t, kFaultKindCount> faults_injected_{};
    ExecutionPool pool_{props_.smem_per_block};
};

}  // namespace cuzc::vgpu
