#pragma once

#include <cstdint>

#include "device_props.hpp"
#include "exec_pool.hpp"
#include "profiler.hpp"

namespace cuzc::vgpu {

/// A modeled GPU device: architectural properties plus the profiler that
/// records every kernel launch and host<->device transfer executed on it.
/// Passed by reference everywhere (no global device state). The execution
/// pool holds the device's recycled per-worker arenas, register slabs, and
/// counter shards.
class Device {
public:
    Device() = default;
    explicit Device(DeviceProps props) : props_(props) {}

    [[nodiscard]] const DeviceProps& props() const noexcept { return props_; }
    [[nodiscard]] Profiler& profiler() noexcept { return profiler_; }
    [[nodiscard]] const Profiler& profiler() const noexcept { return profiler_; }
    [[nodiscard]] ExecutionPool& exec_pool() noexcept { return pool_; }

    void note_h2d(std::uint64_t bytes) noexcept { h2d_bytes_ += bytes; }
    void note_d2h(std::uint64_t bytes) noexcept { d2h_bytes_ += bytes; }
    void note_alloc(std::uint64_t bytes) noexcept {
        ++alloc_count_;
        alloc_bytes_ += bytes;
    }
    [[nodiscard]] std::uint64_t h2d_bytes() const noexcept { return h2d_bytes_; }
    [[nodiscard]] std::uint64_t d2h_bytes() const noexcept { return d2h_bytes_; }
    /// Device-memory allocations performed (DeviceBuffer constructions) —
    /// lets reuse-sensitive paths assert "zero per-item allocations".
    [[nodiscard]] std::uint64_t alloc_count() const noexcept { return alloc_count_; }
    [[nodiscard]] std::uint64_t alloc_bytes() const noexcept { return alloc_bytes_; }

    void reset_counters() {
        profiler_.clear();
        h2d_bytes_ = 0;
        d2h_bytes_ = 0;
        alloc_count_ = 0;
        alloc_bytes_ = 0;
    }

private:
    DeviceProps props_{};
    Profiler profiler_{};
    std::uint64_t h2d_bytes_ = 0;
    std::uint64_t d2h_bytes_ = 0;
    std::uint64_t alloc_count_ = 0;
    std::uint64_t alloc_bytes_ = 0;
    ExecutionPool pool_{props_.smem_per_block};
};

}  // namespace cuzc::vgpu
