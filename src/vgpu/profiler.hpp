#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "dim3.hpp"

namespace cuzc::vgpu {

/// Counters accumulated during one (possibly cooperative) kernel launch.
/// All byte counts refer to the modeled memories: `global_*` to device
/// global memory (HBM), `shared_*` to per-block shared memory (SRAM).
/// `thread_iters` counts per-thread work-loop iterations as reported by the
/// kernel body; it backs the "Iters/thread" column of the paper's Table II.
struct KernelStats {
    std::string name;
    std::uint64_t launches = 0;
    std::uint64_t grid_syncs = 0;
    std::uint64_t blocks = 0;
    std::uint32_t threads_per_block = 0;
    std::uint32_t regs_per_thread = 0;
    std::uint64_t smem_per_block = 0;
    std::uint64_t global_bytes_read = 0;
    std::uint64_t global_bytes_written = 0;
    std::uint64_t shared_bytes_read = 0;
    std::uint64_t shared_bytes_written = 0;
    std::uint64_t shuffle_ops = 0;
    std::uint64_t thread_iters = 0;
    std::uint64_t lane_ops = 0;
    /// Effective DRAM-coalescing of the kernel's access pattern (fraction of
    /// each memory transaction that is useful); set by the kernel, consumed
    /// by the cost model's memory term.
    double coalescing = 1.0;
    /// Dependency-stall multiplier on the compute term: barrier-delimited
    /// phases whose inner loops are serial dependency chains (e.g. the
    /// shuffle ladder of the SSIM kernel) stall the pipelines between
    /// instructions. Calibrated per kernel class against the paper's
    /// measured Fig. 11 throughputs; see EXPERIMENTS.md.
    double serialization = 1.0;

    [[nodiscard]] std::uint64_t global_bytes() const noexcept {
        return global_bytes_read + global_bytes_written;
    }
    [[nodiscard]] std::uint64_t shared_bytes() const noexcept {
        return shared_bytes_read + shared_bytes_written;
    }
    [[nodiscard]] double iters_per_thread() const noexcept {
        const std::uint64_t threads =
            blocks * static_cast<std::uint64_t>(threads_per_block);
        return threads == 0 ? 0.0
                            : static_cast<double>(thread_iters) /
                                  static_cast<double>(threads);
    }

    /// Registers consumed by one resident thread block (paper: "Regs/TB").
    [[nodiscard]] std::uint64_t regs_per_block() const noexcept {
        return static_cast<std::uint64_t>(regs_per_thread) * threads_per_block;
    }

    void merge(const KernelStats& other);

    /// Fold a per-worker counter shard into this launch record. Every
    /// merged field is commutative (sums and maxima), so folding the
    /// workers' contiguous block ranges in worker order yields exactly the
    /// counts of a serial grid-order sweep, for any worker count.
    void merge_counters(const KernelStats& shard) noexcept;

    /// Zero the fields a worker shard accumulates into (cheap per-launch
    /// reset of a pooled shard).
    void reset_counters() noexcept;
};

/// Per-device collection of kernel launch records. Records are kept in
/// launch order; `aggregate(name)` folds every record with a matching
/// kernel name, and `total()` folds everything. Records live in a deque so
/// the reference `begin_launch` returns stays valid across later launches
/// (a vector would invalidate it on reallocation — the nested/batched
/// launch hazard).
class Profiler {
public:
    KernelStats& begin_launch(std::string name);

    [[nodiscard]] const std::deque<KernelStats>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::deque<KernelStats>& mutable_records() noexcept { return records_; }
    [[nodiscard]] KernelStats aggregate(const std::string& name) const;
    [[nodiscard]] KernelStats total() const;
    [[nodiscard]] std::uint64_t launch_count() const noexcept;

    void clear() { records_.clear(); }

private:
    std::deque<KernelStats> records_;
};

}  // namespace cuzc::vgpu
