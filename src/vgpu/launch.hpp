#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "block.hpp"
#include "buffer.hpp"
#include "device.hpp"
#include "shared_arena.hpp"

namespace cuzc::vgpu {

struct LaunchConfig {
    std::string name;
    Dim3 grid{};
    Dim3 block{};
};

/// Handle given to a kernel body for binding device buffers; every span it
/// hands out charges its loads/stores to this launch's stats record.
class Launch {
public:
    explicit Launch(KernelStats& stats) noexcept : stats_(&stats) {}

    template <class T>
    [[nodiscard]] DeviceSpan<T> span(DeviceBuffer<T>& buf) const noexcept {
        return DeviceSpan<T>(buf.raw(), buf.size(), &stats_->global_bytes_read,
                             &stats_->global_bytes_written);
    }

    [[nodiscard]] KernelStats& stats() noexcept { return *stats_; }

private:
    KernelStats* stats_;
};

namespace detail {

inline void check_config(const Device& dev, const LaunchConfig& cfg) {
    assert(cfg.grid.volume() > 0 && cfg.block.volume() > 0);
    assert(cfg.block.volume() <= dev.props().max_threads_per_block &&
           "block exceeds device max threads per block");
    (void)dev;
    (void)cfg;
}

}  // namespace detail

/// Launch a kernel: `body(Launch&, BlockCtx&)` runs once per block of the
/// grid. Blocks execute independently (no inter-block communication except
/// through global memory after the launch), matching CUDA's guarantees for
/// a non-cooperative launch. Execution is deterministic: blocks run in
/// linearized grid order.
template <class Body>
KernelStats& launch(Device& dev, const LaunchConfig& cfg, Body&& body) {
    detail::check_config(dev, cfg);
    KernelStats& stats = dev.profiler().begin_launch(cfg.name);
    stats.blocks = cfg.grid.volume();
    stats.threads_per_block = static_cast<std::uint32_t>(cfg.block.volume());
    Launch handle(stats);
    for (std::uint32_t bz = 0; bz < cfg.grid.z; ++bz) {
        for (std::uint32_t by = 0; by < cfg.grid.y; ++by) {
            for (std::uint32_t bx = 0; bx < cfg.grid.x; ++bx) {
                SharedArena arena(dev.props().smem_per_block, &stats.shared_bytes_read,
                                  &stats.shared_bytes_written);
                BlockCtx blk(stats, dev.props(), cfg.grid, cfg.block, Dim3{bx, by, bz}, arena);
                body(handle, blk);
                if (arena.peak_bytes() > stats.smem_per_block) {
                    stats.smem_per_block = arena.peak_bytes();
                }
            }
        }
    }
    return stats;
}

/// Cooperative launch (cooperative groups): the kernel is a sequence of
/// phases with a grid-wide barrier (`cg::sync(grid)`) between consecutive
/// phases. All blocks stay resident for the whole launch, so shared memory
/// persists across phases — the runtime keeps one arena per block alive
/// until the last phase completes.
using CoopPhase = std::function<void(Launch&, BlockCtx&)>;

inline KernelStats& coop_launch(Device& dev, const LaunchConfig& cfg,
                                const std::vector<CoopPhase>& phases) {
    detail::check_config(dev, cfg);
    assert(cfg.grid.y == 1 && cfg.grid.z == 1 && "cooperative grids are 1-D in this runtime");
    KernelStats& stats = dev.profiler().begin_launch(cfg.name);
    stats.blocks = cfg.grid.volume();
    stats.threads_per_block = static_cast<std::uint32_t>(cfg.block.volume());
    stats.grid_syncs = phases.empty() ? 0 : phases.size() - 1;
    Launch handle(stats);

    std::vector<std::unique_ptr<SharedArena>> arenas;
    arenas.reserve(cfg.grid.x);
    for (std::uint32_t bx = 0; bx < cfg.grid.x; ++bx) {
        arenas.push_back(std::make_unique<SharedArena>(
            dev.props().smem_per_block, &stats.shared_bytes_read, &stats.shared_bytes_written));
    }

    for (const auto& phase : phases) {
        for (std::uint32_t bx = 0; bx < cfg.grid.x; ++bx) {
            BlockCtx blk(stats, dev.props(), cfg.grid, cfg.block, Dim3{bx, 0, 0}, *arenas[bx]);
            phase(handle, blk);
        }
    }
    for (const auto& arena : arenas) {
        if (arena->peak_bytes() > stats.smem_per_block) {
            stats.smem_per_block = arena->peak_bytes();
        }
    }
    return stats;
}

}  // namespace cuzc::vgpu
