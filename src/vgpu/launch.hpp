#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "block.hpp"
#include "buffer.hpp"
#include "device.hpp"
#include "exec_pool.hpp"
#include "scheduler.hpp"
#include "shared_arena.hpp"

namespace cuzc::vgpu {

struct LaunchConfig {
    std::string name;
    Dim3 grid{};
    Dim3 block{};
};

/// Handle given to a kernel body for binding device buffers; every span it
/// hands out charges its loads/stores to the executing worker's counter
/// shard (the launch record itself when execution is serial).
class Launch {
public:
    explicit Launch(KernelStats& stats) noexcept : stats_(&stats) {}

    /// Writable view. Not noexcept: a buffer aliasing an adopted payload
    /// materializes a private copy before handing out mutable storage.
    template <class T>
    [[nodiscard]] DeviceSpan<T> span(DeviceBuffer<T>& buf) const {
        return DeviceSpan<T>(buf.raw(), buf.size(), &stats_->global_bytes_read,
                             &stats_->global_bytes_written);
    }

    /// Read-only view of a buffer the kernel only consumes: stores are a
    /// compile error and only the read counter is carried.
    template <class T>
    [[nodiscard]] DeviceSpan<const T> span(const DeviceBuffer<T>& buf) const noexcept {
        return DeviceSpan<const T>(buf.raw(), buf.size(), &stats_->global_bytes_read,
                                   &stats_->global_bytes_written);
    }

    [[nodiscard]] KernelStats& stats() noexcept { return *stats_; }

private:
    KernelStats* stats_;
};

namespace detail {

inline void check_config(const Device& dev, const LaunchConfig& cfg) {
    assert(cfg.grid.volume() > 0 && cfg.block.volume() > 0);
    assert(cfg.block.volume() <= dev.props().max_threads_per_block &&
           "block exceeds device max threads per block");
    (void)dev;
    (void)cfg;
}

[[nodiscard]] inline Dim3 delinearize_block(std::size_t b, const Dim3& grid) noexcept {
    const auto gx = static_cast<std::size_t>(grid.x);
    const auto gy = static_cast<std::size_t>(grid.y);
    return Dim3{static_cast<std::uint32_t>(b % gx), static_cast<std::uint32_t>((b / gx) % gy),
                static_cast<std::uint32_t>(b / (gx * gy))};
}

}  // namespace detail

/// Launch a kernel: `body(Launch&, BlockCtx&)` runs once per block of the
/// grid. Blocks execute independently (no inter-block communication except
/// through global memory after the launch — or `DeviceSpan::atomic_add`
/// during it), matching CUDA's guarantees for a non-cooperative launch.
///
/// Execution is parallel across host workers (see BlockScheduler) yet fully
/// deterministic: each worker runs a contiguous range of the linearized
/// grid, charging its private counter shard from the device's execution
/// pool, and the shards are merged into the launch record in worker order.
/// Every merged field is a sum or maximum, so the record is bit-identical
/// to a serial grid-order sweep for any worker count. Arenas and register
/// slabs are pooled per worker and recycled per block — the steady-state
/// per-block cost is two pointer resets, not allocations.
template <class Body>
KernelStats& launch(Device& dev, const LaunchConfig& cfg, Body&& body) {
    detail::check_config(dev, cfg);
    dev.fault_point_kernel(cfg.name);  // may stall or throw before any block runs
    KernelStats& stats = dev.profiler().begin_launch(cfg.name);
    stats.blocks = cfg.grid.volume();
    stats.threads_per_block = static_cast<std::uint32_t>(cfg.block.volume());

    const auto nblocks = static_cast<std::size_t>(cfg.grid.volume());
    ExecutionPool& pool = dev.exec_pool();
    BlockScheduler& sched = BlockScheduler::instance();
    const std::size_t workers = sched.plan_workers(nblocks);
    for (std::size_t w = 0; w < workers; ++w) pool.slot(w).shard.reset_counters();

    sched.run(nblocks, workers, [&](std::size_t w, std::size_t begin, std::size_t end) {
        WorkerSlot& slot = pool.slot(w);
        Launch handle(slot.shard);
        const ThreadCtx* tids = slot.tids.get(cfg.block);
        for (std::size_t b = begin; b < end; ++b) {
            slot.arena.begin_block(&slot.shard.shared_bytes_read,
                                   &slot.shard.shared_bytes_written);
            slot.regs.reset();
            BlockCtx blk(slot.shard, dev.props(), cfg.grid, cfg.block,
                         detail::delinearize_block(b, cfg.grid), slot.arena, &slot.regs, tids);
            body(handle, blk);
            if (slot.arena.peak_bytes() > slot.shard.smem_per_block) {
                slot.shard.smem_per_block = slot.arena.peak_bytes();
            }
        }
    });

    for (std::size_t w = 0; w < workers; ++w) stats.merge_counters(pool.slot(w).shard);
    return stats;
}

/// Cooperative launch (cooperative groups): the kernel is a sequence of
/// phases with a grid-wide barrier (`cg::sync(grid)`) between consecutive
/// phases. All blocks stay resident for the whole launch, so shared memory
/// persists across phases — the runtime keeps one pooled arena per block
/// alive until the last phase completes. Cooperative grids execute serially
/// in block order: resident-grid kernels may (and pattern1's histogram
/// phase does) perform cross-block read-modify-writes that rely on it.
using CoopPhase = std::function<void(Launch&, BlockCtx&)>;

inline KernelStats& coop_launch(Device& dev, const LaunchConfig& cfg,
                                const std::vector<CoopPhase>& phases) {
    detail::check_config(dev, cfg);
    assert(cfg.grid.y == 1 && cfg.grid.z == 1 && "cooperative grids are 1-D in this runtime");
    dev.fault_point_kernel(cfg.name);  // may stall or throw before any block runs
    KernelStats& stats = dev.profiler().begin_launch(cfg.name);
    stats.blocks = cfg.grid.volume();
    stats.threads_per_block = static_cast<std::uint32_t>(cfg.block.volume());
    stats.grid_syncs = phases.empty() ? 0 : phases.size() - 1;
    Launch handle(stats);

    ExecutionPool& pool = dev.exec_pool();
    for (std::uint32_t bx = 0; bx < cfg.grid.x; ++bx) {
        pool.coop_arena(bx).begin_block(&stats.shared_bytes_read, &stats.shared_bytes_written);
    }

    const ThreadCtx* tids = pool.coop_tids().get(cfg.block);
    for (const auto& phase : phases) {
        for (std::uint32_t bx = 0; bx < cfg.grid.x; ++bx) {
            pool.coop_regs().reset();
            BlockCtx blk(stats, dev.props(), cfg.grid, cfg.block, Dim3{bx, 0, 0},
                         pool.coop_arena(bx), &pool.coop_regs(), tids);
            phase(handle, blk);
        }
    }
    for (std::uint32_t bx = 0; bx < cfg.grid.x; ++bx) {
        if (pool.coop_arena(bx).peak_bytes() > stats.smem_per_block) {
            stats.smem_per_block = pool.coop_arena(bx).peak_bytes();
        }
    }
    return stats;
}

}  // namespace cuzc::vgpu
