#pragma once

#include <cstdint>
#include <vector>

#include "dim3.hpp"

namespace cuzc::vgpu {

/// Identity of one thread within a block, following CUDA's linearization:
/// linear = (tz * blockDim.y + ty) * blockDim.x + tx, warp = linear / 32.
struct ThreadCtx {
    Dim3 tid{};
    std::uint32_t linear = 0;
    std::uint32_t warp = 0;
    std::uint32_t lane = 0;
};

/// A per-thread register variable (or small register array) that lives for
/// the duration of a block, surviving across barrier phases — the software
/// model of the SM register file. `width` values of type T are held per
/// thread. Allocation size feeds the Regs/TB accounting.
template <class T>
class RegArray {
public:
    RegArray(std::uint32_t threads, std::uint32_t width, const T& init = T{})
        : width_(width), v_(static_cast<std::size_t>(threads) * width, init) {}

    [[nodiscard]] T& operator()(const ThreadCtx& t, std::uint32_t i = 0) noexcept {
        return v_[static_cast<std::size_t>(t.linear) * width_ + i];
    }
    [[nodiscard]] const T& operator()(const ThreadCtx& t, std::uint32_t i = 0) const noexcept {
        return v_[static_cast<std::size_t>(t.linear) * width_ + i];
    }
    [[nodiscard]] T& at(std::uint32_t linear, std::uint32_t i = 0) noexcept {
        return v_[static_cast<std::size_t>(linear) * width_ + i];
    }
    [[nodiscard]] const T& at(std::uint32_t linear, std::uint32_t i = 0) const noexcept {
        return v_[static_cast<std::size_t>(linear) * width_ + i];
    }

    [[nodiscard]] std::uint32_t width() const noexcept { return width_; }

private:
    std::uint32_t width_;
    std::vector<T> v_;
};

}  // namespace cuzc::vgpu
