#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dim3.hpp"

namespace cuzc::vgpu {

/// Identity of one thread within a block, following CUDA's linearization:
/// linear = (tz * blockDim.y + ty) * blockDim.x + tx, warp = linear / 32.
struct ThreadCtx {
    Dim3 tid{};
    std::uint32_t linear = 0;
    std::uint32_t warp = 0;
    std::uint32_t lane = 0;
};

/// A per-thread register variable (or small register array) that lives for
/// the duration of a block, surviving across barrier phases — the software
/// model of the SM register file. `width` values of type T are held per
/// thread. Allocation size feeds the Regs/TB accounting.
///
/// Two storage modes: owning (a private heap vector, the standalone form
/// used directly in tests) and view (a caller-provided slab region from the
/// per-worker register pool, the form `BlockCtx::make_regs` hands out on the
/// hot path — no allocation per block). Both fill the storage with `init`.
template <class T>
class RegArray {
public:
    RegArray(std::uint32_t threads, std::uint32_t width, const T& init = T{})
        : width_(width), v_(static_cast<std::size_t>(threads) * width, init), data_(v_.data()) {}

    /// View mode over pooled storage; `slab` must hold threads*width Ts and
    /// stay valid for the lifetime of this array (one block).
    RegArray(T* slab, std::uint32_t threads, std::uint32_t width, const T& init)
        : width_(width), data_(slab) {
        std::fill_n(slab, static_cast<std::size_t>(threads) * width, init);
    }

    [[nodiscard]] T& operator()(const ThreadCtx& t, std::uint32_t i = 0) noexcept {
        return data_[static_cast<std::size_t>(t.linear) * width_ + i];
    }
    [[nodiscard]] const T& operator()(const ThreadCtx& t, std::uint32_t i = 0) const noexcept {
        return data_[static_cast<std::size_t>(t.linear) * width_ + i];
    }
    [[nodiscard]] T& at(std::uint32_t linear, std::uint32_t i = 0) noexcept {
        return data_[static_cast<std::size_t>(linear) * width_ + i];
    }
    [[nodiscard]] const T& at(std::uint32_t linear, std::uint32_t i = 0) const noexcept {
        return data_[static_cast<std::size_t>(linear) * width_ + i];
    }

    [[nodiscard]] std::uint32_t width() const noexcept { return width_; }

private:
    std::uint32_t width_;
    std::vector<T> v_;
    T* data_;
};

}  // namespace cuzc::vgpu
