#pragma once

#include <cstdint>

#include "cost_params.hpp"
#include "device_props.hpp"
#include "occupancy.hpp"
#include "profiler.hpp"

namespace cuzc::vgpu {

/// Modeled execution-time breakdown of a kernel (seconds). The dominant
/// term follows the roofline principle: memory traffic, compute, and
/// shared-memory traffic overlap, so the kernel-body time is their max;
/// launch and grid-sync overheads are additive.
struct GpuTimeBreakdown {
    double launch_s = 0.0;
    double mem_s = 0.0;
    double compute_s = 0.0;
    double smem_s = 0.0;
    double total_s = 0.0;
    double derate = 1.0;
    /// Fraction of SMs with any work: grids smaller than the SM count leave
    /// SMs idle outright (the dominant effect behind the paper's pattern-2
    /// slowdown on Hurricane/Scale-LETKF, whose z-extents yield ~17 blocks
    /// for 80 SMs).
    double sm_utilization = 1.0;
    std::uint32_t resident_blocks_per_sm = 0;
};

/// Work description for the CPU (ompZC) model: bytes moved through the
/// memory hierarchy and scalar operations executed, split across threads.
struct CpuWork {
    std::uint64_t bytes = 0;
    std::uint64_t ops = 0;
};

class GpuCostModel {
public:
    GpuCostModel(DeviceProps props, GpuCostParams params) : props_(props), params_(params) {}

    [[nodiscard]] const DeviceProps& props() const noexcept { return props_; }
    [[nodiscard]] const GpuCostParams& params() const noexcept { return params_; }

    /// Modeled wall time of one profiled kernel (aggregate record allowed:
    /// launch overhead scales with `stats.launches`). Uses the kernel's
    /// reported coalescing unless a positive override is supplied.
    [[nodiscard]] GpuTimeBreakdown kernel_time(const KernelStats& stats,
                                               double coalescing_override = 0.0) const;

private:
    DeviceProps props_;
    GpuCostParams params_;
};

class CpuCostModel {
public:
    explicit CpuCostModel(CpuCostParams params) : params_(params) {}

    [[nodiscard]] const CpuCostParams& params() const noexcept { return params_; }

    /// Modeled wall time of an OpenMP region using `threads` workers.
    [[nodiscard]] double time(const CpuWork& work, int threads) const;

private:
    CpuCostParams params_;
};

}  // namespace cuzc::vgpu
