// AVX2 backend: 4×f64 lanes. This translation unit is compiled with -mavx2
// (and deliberately NOT -mfma: contraction would break bit-identity with
// the scalar path); usability is gated at runtime by CPUID in simd.cpp.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "simd_kernels.hpp"

namespace cuzc::vgpu::simd::avx2 {

namespace {

struct VecF32 {
    using reg = __m128;
    static reg loadu(const float* p) noexcept { return _mm_loadu_ps(p); }
    static void storeu(float* p, reg v) noexcept { _mm_storeu_ps(p, v); }
};

struct VecI32 {
    using reg = __m128i;
    static void storeu(std::int32_t* p, reg v) noexcept {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
    }
};

struct VecF64 {
    static constexpr std::size_t W = 4;
    using reg = __m256d;
    using f32 = VecF32;
    using i32 = VecI32;
    static reg loadu(const double* p) noexcept { return _mm256_loadu_pd(p); }
    static void storeu(double* p, reg v) noexcept { _mm256_storeu_pd(p, v); }
    static reg bcast(double v) noexcept { return _mm256_set1_pd(v); }
    static reg add(reg a, reg b) noexcept { return _mm256_add_pd(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm256_sub_pd(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm256_mul_pd(a, b); }
    static reg div(reg a, reg b) noexcept { return _mm256_div_pd(a, b); }
    static reg sqrt(reg a) noexcept { return _mm256_sqrt_pd(a); }
    static reg vmin(reg a, reg b) noexcept { return _mm256_min_pd(a, b); }
    static reg vmax(reg a, reg b) noexcept { return _mm256_max_pd(a, b); }
    static reg abs(reg a) noexcept { return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a); }
    static reg sel_abs(reg a) noexcept {
        const reg neg = _mm256_sub_pd(_mm256_setzero_pd(), a);
        const reg mask = _mm256_cmp_pd(a, _mm256_setzero_pd(), _CMP_LT_OQ);
        return _mm256_blendv_pd(a, neg, mask);
    }
    static reg cvt_f32(const float* p) noexcept { return _mm256_cvtps_pd(VecF32::loadu(p)); }
    static void store_f32(float* p, reg v) noexcept { VecF32::storeu(p, _mm256_cvtpd_ps(v)); }
    /// Hardware gather of p[0], p[stride], p[2*stride], p[3*stride] widened
    /// to f64 — value-identical to four scalar load+casts. Callers must keep
    /// 3*stride within the instruction's signed 32-bit index lanes.
    static reg gather_cvt_f32(const float* p, std::size_t stride) noexcept {
        const int s = static_cast<int>(stride);
        const __m128i idx = _mm_setr_epi32(0, s, 2 * s, 3 * s);
        return _mm256_cvtps_pd(_mm_i32gather_ps(p, idx, 4));
    }
};

}  // namespace

const Ops* table() noexcept {
    static const Ops t = detail::make_ops<VecF64>("avx2", Backend::kAvx2);
    return &t;
}

}  // namespace cuzc::vgpu::simd::avx2

#endif  // x86-64
