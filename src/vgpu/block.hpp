#pragma once

#include <cstdint>
#include <utility>

#include "device_props.hpp"
#include "dim3.hpp"
#include "exec_pool.hpp"
#include "profiler.hpp"
#include "shared_arena.hpp"
#include "thread_ctx.hpp"
#include "warp.hpp"

namespace cuzc::vgpu {

/// Execution context of one thread block. The runtime executes a block by
/// invoking the kernel body once per block; inside the body,
/// `for_each_thread(fn)` runs `fn` to completion for every thread of the
/// block before returning — so the gap between two `for_each_*` calls has
/// exactly the semantics of `__syncthreads()`: all side effects of the
/// previous region are visible to every thread in the next region.
/// Per-thread state that must survive across barriers is held in explicit
/// `RegArray` allocations (the software register file), which also back the
/// Regs/TB occupancy accounting.
class BlockCtx {
public:
    /// Baseline register footprint of any compiled kernel thread (ABI
    /// scratch, address arithmetic, loop counters) before explicit state.
    static constexpr std::uint32_t kBaseRegsPerThread = 8;

    BlockCtx(KernelStats& stats, const DeviceProps& props, Dim3 grid_dim, Dim3 block_dim,
             Dim3 block_idx, SharedArena& arena, RegSlab* slab = nullptr,
             const ThreadCtx* thread_table = nullptr) noexcept
        : stats_(&stats),
          props_(&props),
          grid_dim_(grid_dim),
          block_dim_(block_dim),
          block_idx_(block_idx),
          arena_(&arena),
          slab_(slab),
          thread_table_(thread_table),
          num_threads_(static_cast<std::uint32_t>(block_dim.volume())),
          num_warps_((num_threads_ + kWarpSize - 1) / kWarpSize) {}

    [[nodiscard]] Dim3 block_idx() const noexcept { return block_idx_; }
    [[nodiscard]] Dim3 block_dim() const noexcept { return block_dim_; }
    [[nodiscard]] Dim3 grid_dim() const noexcept { return grid_dim_; }
    [[nodiscard]] std::uint32_t num_threads() const noexcept { return num_threads_; }
    [[nodiscard]] std::uint32_t num_warps() const noexcept { return num_warps_; }

    [[nodiscard]] SharedArena& shared() noexcept { return *arena_; }
    [[nodiscard]] KernelStats& stats() noexcept { return *stats_; }

    /// Allocate `width` per-thread registers of type T (one RegArray row per
    /// thread). Register pressure is accumulated into the kernel's
    /// regs-per-thread estimate in 32-bit register units. When the block
    /// runs under the execution pool, storage comes from the worker's
    /// recycled register slab instead of a per-block heap allocation.
    template <class T>
    [[nodiscard]] RegArray<T> make_regs(std::uint32_t width = 1, const T& init = T{}) {
        const std::uint32_t words = width * static_cast<std::uint32_t>((sizeof(T) + 3) / 4);
        reg_words_ += words;
        const std::uint32_t total = kBaseRegsPerThread + reg_words_;
        if (total > stats_->regs_per_thread) stats_->regs_per_thread = total;
        if constexpr (std::is_trivially_destructible_v<T> && std::is_trivially_copyable_v<T>) {
            if (slab_ != nullptr) {
                T* p = slab_->alloc<T>(static_cast<std::size_t>(num_threads_) * width);
                return RegArray<T>(p, num_threads_, width, init);
            }
        }
        return RegArray<T>(num_threads_, width, init);
    }

    [[nodiscard]] ThreadCtx thread_at(std::uint32_t linear) const noexcept {
        ThreadCtx t;
        t.linear = linear;
        t.tid.x = linear % block_dim_.x;
        t.tid.y = (linear / block_dim_.x) % block_dim_.y;
        t.tid.z = linear / (block_dim_.x * block_dim_.y);
        t.warp = linear / kWarpSize;
        t.lane = linear % kWarpSize;
        return t;
    }

    /// Run `fn(ThreadCtx&)` for every thread of the block. Returning from
    /// this call is a block-wide barrier.
    template <class F>
    void for_each_thread(F&& fn) {
        if (thread_table_ != nullptr) {
            for (std::uint32_t i = 0; i < num_threads_; ++i) {
                ThreadCtx t = thread_table_[i];
                fn(t);
            }
            return;
        }
        for (std::uint32_t i = 0; i < num_threads_; ++i) {
            ThreadCtx t = thread_at(i);
            fn(t);
        }
    }

    /// Run `fn(WarpCtx&)` for every warp of the block. Returning from this
    /// call is a block-wide barrier.
    template <class F>
    void for_each_warp(F&& fn) {
        for (std::uint32_t w = 0; w < num_warps_; ++w) {
            const std::uint32_t base = w * kWarpSize;
            const std::uint32_t lanes =
                num_threads_ - base < kWarpSize ? num_threads_ - base : kWarpSize;
            WarpCtx warp(w, base, lanes, stats_);
            fn(warp);
        }
    }

    /// Kernel-reported workload counters (per-thread loop trips / FLOPs);
    /// these back Table II's Iters/thread and the compute term of the cost
    /// model.
    void add_iters(std::uint64_t n) noexcept { stats_->thread_iters += n; }
    void add_ops(std::uint64_t n) noexcept { stats_->lane_ops += n; }

private:
    KernelStats* stats_;
    const DeviceProps* props_;
    Dim3 grid_dim_;
    Dim3 block_dim_;
    Dim3 block_idx_;
    SharedArena* arena_;
    RegSlab* slab_ = nullptr;
    const ThreadCtx* thread_table_ = nullptr;
    std::uint32_t num_threads_;
    std::uint32_t num_warps_;
    std::uint32_t reg_words_ = 0;
};

}  // namespace cuzc::vgpu
