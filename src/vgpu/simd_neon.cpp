// NEON backend: 2×f64 lanes (AArch64 only, where Advanced SIMD is baseline).
// NaN/±0 semantics of vminq/vmaxq differ from the x86 MINPD/MAXPD ternary,
// so min/max are built from compare + bit-select instead.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "simd_kernels.hpp"

namespace cuzc::vgpu::simd::neon {

namespace {

struct VecF32 {
    using reg = float32x2_t;
    static reg loadu(const float* p) noexcept { return vld1_f32(p); }
    static void storeu(float* p, reg v) noexcept { vst1_f32(p, v); }
};

struct VecI32 {
    using reg = int32x2_t;
    static void storeu(std::int32_t* p, reg v) noexcept { vst1_s32(p, v); }
};

struct VecF64 {
    static constexpr std::size_t W = 2;
    using reg = float64x2_t;
    using f32 = VecF32;
    using i32 = VecI32;
    static reg loadu(const double* p) noexcept { return vld1q_f64(p); }
    static void storeu(double* p, reg v) noexcept { vst1q_f64(p, v); }
    static reg bcast(double v) noexcept { return vdupq_n_f64(v); }
    static reg add(reg a, reg b) noexcept { return vaddq_f64(a, b); }
    static reg sub(reg a, reg b) noexcept { return vsubq_f64(a, b); }
    static reg mul(reg a, reg b) noexcept { return vmulq_f64(a, b); }
    static reg div(reg a, reg b) noexcept { return vdivq_f64(a, b); }
    static reg sqrt(reg a) noexcept { return vsqrtq_f64(a); }
    // a < b ? a : b — matches the x86 MINPD ternary (picks b on NaN/ties).
    static reg vmin(reg a, reg b) noexcept { return vbslq_f64(vcltq_f64(a, b), a, b); }
    static reg vmax(reg a, reg b) noexcept { return vbslq_f64(vcgtq_f64(a, b), a, b); }
    static reg abs(reg a) noexcept { return vabsq_f64(a); }
    static reg sel_abs(reg a) noexcept {
        const reg neg = vsubq_f64(vdupq_n_f64(0.0), a);
        return vbslq_f64(vcltq_f64(a, vdupq_n_f64(0.0)), neg, a);
    }
    static reg cvt_f32(const float* p) noexcept { return vcvt_f64_f32(VecF32::loadu(p)); }
    static void store_f32(float* p, reg v) noexcept { VecF32::storeu(p, vcvt_f32_f64(v)); }
};

}  // namespace

const Ops* table() noexcept {
    static const Ops t = detail::make_ops<VecF64>("neon", Backend::kNeon);
    return &t;
}

}  // namespace cuzc::vgpu::simd::neon

#endif  // __aarch64__
