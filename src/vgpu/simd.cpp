#include "simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cuzc::vgpu::simd {

namespace scalar {
const Ops* table() noexcept;
}
#if defined(__x86_64__) || defined(_M_X64)
namespace sse2 {
const Ops* table() noexcept;
}
namespace avx2 {
const Ops* table() noexcept;
}
#endif
#if defined(__aarch64__)
namespace neon {
const Ops* table() noexcept;
}
#endif

namespace {

[[nodiscard]] const Ops* table_of(Backend b) noexcept {
    switch (b) {
        case Backend::kScalar:
            return scalar::table();
#if defined(__x86_64__) || defined(_M_X64)
        case Backend::kSse2:
            return sse2::table();
        case Backend::kAvx2:
            return __builtin_cpu_supports("avx2") ? avx2::table() : nullptr;
#endif
#if defined(__aarch64__)
        case Backend::kNeon:
            return neon::table();
#endif
        default:
            return nullptr;
    }
}

[[nodiscard]] const Ops* best_table() noexcept {
    for (Backend b : {Backend::kAvx2, Backend::kNeon, Backend::kSse2, Backend::kScalar}) {
        if (const Ops* t = table_of(b)) return t;
    }
    return scalar::table();
}

[[nodiscard]] bool parse_backend(const char* s, Backend& out) noexcept {
    if (std::strcmp(s, "scalar") == 0) out = Backend::kScalar;
    else if (std::strcmp(s, "sse2") == 0) out = Backend::kSse2;
    else if (std::strcmp(s, "avx2") == 0) out = Backend::kAvx2;
    else if (std::strcmp(s, "neon") == 0) out = Backend::kNeon;
    else return false;
    return true;
}

[[nodiscard]] const Ops* resolve() noexcept {
    const char* env = std::getenv("CUZC_SIMD");
    if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
        Backend want{};
        if (!parse_backend(env, want)) {
            std::fprintf(stderr,
                         "cuzc: unknown CUZC_SIMD=%s (expected scalar|sse2|avx2|neon|auto); "
                         "using automatic selection\n",
                         env);
            return best_table();
        }
        if (const Ops* t = table_of(want)) return t;
        const Ops* best = best_table();
        std::fprintf(stderr, "cuzc: CUZC_SIMD=%s is not available on this host; using %s\n", env,
                     best->name);
        return best;
    }
    return best_table();
}

std::atomic<const Ops*>& selected() noexcept {
    static std::atomic<const Ops*> cur{nullptr};
    return cur;
}

}  // namespace

const Ops& ops() noexcept {
    const Ops* t = selected().load(std::memory_order_acquire);
    if (t == nullptr) {
        // Benign race: every thread resolves to the same table.
        t = resolve();
        selected().store(t, std::memory_order_release);
    }
    return *t;
}

Backend active_backend() noexcept { return ops().backend; }

const char* backend_name(Backend b) noexcept {
    switch (b) {
        case Backend::kScalar:
            return "scalar";
        case Backend::kSse2:
            return "sse2";
        case Backend::kAvx2:
            return "avx2";
        case Backend::kNeon:
            return "neon";
    }
    return "?";
}

bool backend_available(Backend b) noexcept { return table_of(b) != nullptr; }

std::vector<Backend> available_backends() {
    std::vector<Backend> out;
    for (Backend b : {Backend::kAvx2, Backend::kNeon, Backend::kSse2, Backend::kScalar}) {
        if (table_of(b) != nullptr) out.push_back(b);
    }
    return out;
}

bool force_backend(Backend b) noexcept {
    const Ops* t = table_of(b);
    if (t == nullptr) return false;
    selected().store(t, std::memory_order_release);
    return true;
}

std::string banner() {
    std::string s = "simd=";
    s += ops().name;
    s += " (available:";
    for (Backend b : available_backends()) {
        s += ' ';
        s += backend_name(b);
    }
    s += "; CUZC_SIMD=";
    const char* env = std::getenv("CUZC_SIMD");
    s += env != nullptr && *env != '\0' ? env : "unset";
    s += ')';
    return s;
}

}  // namespace cuzc::vgpu::simd
