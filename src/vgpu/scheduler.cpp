#include "scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cuzc::vgpu {

namespace {

std::size_t default_workers() {
    if (const char* s = std::getenv("CUZC_VGPU_THREADS")) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(s, &end, 10);
        if (end != s && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? hc : 1;
}

/// True on any thread currently executing a block range — pool workers for
/// their whole lifetime, the caller while it runs worker 0's range. A launch
/// issued from such a thread must not re-enter the pool.
thread_local bool tls_in_run = false;

}  // namespace

BlockScheduler::SerialScope::SerialScope() : prev_(tls_in_run) { tls_in_run = true; }

BlockScheduler::SerialScope::~SerialScope() { tls_in_run = prev_; }

struct BlockScheduler::Impl {
    std::atomic<std::size_t> max_workers{default_workers()};

    std::mutex run_mutex;  // serializes run() and thread spawning

    std::mutex m;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    std::vector<std::thread> threads;
    const RangeFn* job = nullptr;
    std::size_t job_nblocks = 0;
    std::size_t job_workers = 0;
    std::size_t pending = 0;
    std::uint64_t epoch = 0;
    bool stop = false;

    static std::pair<std::size_t, std::size_t> range_of(std::size_t nblocks, std::size_t workers,
                                                        std::size_t w) {
        const std::size_t base = nblocks / workers;
        const std::size_t rem = nblocks % workers;
        const std::size_t begin = w * base + std::min(w, rem);
        return {begin, begin + base + (w < rem ? 1 : 0)};
    }

    void worker_main(std::size_t idx) {
        tls_in_run = true;
        std::unique_lock lk(m);
        std::uint64_t seen = 0;
        for (;;) {
            work_cv.wait(lk, [&] { return stop || epoch != seen; });
            if (stop) return;
            seen = epoch;
            if (job != nullptr && idx < job_workers) {
                const RangeFn* fn = job;
                const auto [b, e] = range_of(job_nblocks, job_workers, idx);
                lk.unlock();
                (*fn)(idx, b, e);
                lk.lock();
                if (--pending == 0) done_cv.notify_one();
            }
        }
    }
};

BlockScheduler::BlockScheduler() : impl_(new Impl) {}

BlockScheduler::~BlockScheduler() {
    {
        std::lock_guard lk(impl_->m);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (auto& t : impl_->threads) t.join();
    delete impl_;
}

BlockScheduler& BlockScheduler::instance() {
    static BlockScheduler sched;
    return sched;
}

std::size_t BlockScheduler::max_workers() const noexcept {
    return impl_->max_workers.load(std::memory_order_relaxed);
}

std::size_t BlockScheduler::plan_workers(std::size_t nblocks) const noexcept {
    if (tls_in_run || nblocks <= 1) return 1;
    return std::min(max_workers(), nblocks);
}

void BlockScheduler::set_num_threads(std::size_t n) {
    std::lock_guard lk(impl_->run_mutex);
    impl_->max_workers.store(n > 0 ? n : default_workers(), std::memory_order_relaxed);
}

void BlockScheduler::run(std::size_t nblocks, std::size_t workers, const RangeFn& fn) {
    if (nblocks == 0) return;
    if (workers <= 1 || tls_in_run) {
        fn(0, 0, nblocks);
        return;
    }
    std::lock_guard run_lk(impl_->run_mutex);
    while (impl_->threads.size() < workers - 1) {
        const std::size_t idx = impl_->threads.size() + 1;
        impl_->threads.emplace_back([this, idx] { impl_->worker_main(idx); });
    }
    {
        std::lock_guard lk(impl_->m);
        impl_->job = &fn;
        impl_->job_nblocks = nblocks;
        impl_->job_workers = workers;
        impl_->pending = workers - 1;
        ++impl_->epoch;
    }
    impl_->work_cv.notify_all();

    const auto [b0, e0] = Impl::range_of(nblocks, workers, 0);
    tls_in_run = true;
    fn(0, b0, e0);
    tls_in_run = false;

    std::unique_lock lk(impl_->m);
    impl_->done_cv.wait(lk, [&] { return impl_->pending == 0; });
    impl_->job = nullptr;
}

}  // namespace cuzc::vgpu
