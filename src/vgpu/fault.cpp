#include "fault.hpp"

#include <charconv>
#include <cstdlib>

namespace cuzc::vgpu {

std::string_view to_string(FaultKind k) noexcept {
    switch (k) {
        case FaultKind::kAllocFail: return "alloc-fail";
        case FaultKind::kUploadCorrupt: return "upload-corrupt";
        case FaultKind::kKernelThrow: return "kernel-throw";
        case FaultKind::kLatency: return "latency";
    }
    return "unknown";
}

namespace {

[[noreturn]] void spec_fail(std::string_view spec, const std::string& what) {
    throw std::runtime_error("fault spec '" + std::string(spec) + "': " + what);
}

template <class T>
T parse_value(std::string_view spec, std::string_view key, std::string_view val) {
    T v{};
    const char* b = val.data();
    const char* e = b + val.size();
    const auto [p, ec] = std::from_chars(b, e, v);
    if (ec != std::errc{} || p != e) {
        spec_fail(spec, "bad value for '" + std::string(key) + "'");
    }
    return v;
}

double parse_rate(std::string_view spec, std::string_view key, std::string_view val) {
    const double r = parse_value<double>(spec, key, val);
    if (r < 0.0 || r > 1.0) spec_fail(spec, "'" + std::string(key) + "' must be in [0, 1]");
    return r;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
    FaultPlan plan;
    std::string_view rest = spec;
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string_view tok = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
        if (tok.empty()) continue;
        const std::size_t eq = tok.find('=');
        if (eq == std::string_view::npos) {
            spec_fail(spec, "token '" + std::string(tok) + "' is not key=value");
        }
        const std::string_view key = tok.substr(0, eq);
        const std::string_view val = tok.substr(eq + 1);
        if (key == "seed") {
            plan.seed = parse_value<std::uint64_t>(spec, key, val);
        } else if (key == "alloc") {
            plan.alloc_fail = parse_rate(spec, key, val);
        } else if (key == "upload") {
            plan.upload_corrupt = parse_rate(spec, key, val);
        } else if (key == "kernel") {
            plan.kernel_throw = parse_rate(spec, key, val);
        } else if (key == "latency") {
            plan.latency = parse_rate(spec, key, val);
        } else if (key == "latency_ms") {
            plan.latency_ms = parse_value<double>(spec, key, val);
            if (plan.latency_ms < 0) spec_fail(spec, "'latency_ms' must be >= 0");
        } else if (key == "max") {
            plan.max_faults = parse_value<std::uint64_t>(spec, key, val);
        } else {
            spec_fail(spec, "unknown key '" + std::string(key) + "'");
        }
    }
    return plan;
}

FaultPlan FaultPlan::from_env() {
    const char* spec = std::getenv("CUZC_FAULTS");
    if (spec == nullptr || *spec == '\0') return {};
    return parse(spec);
}

}  // namespace cuzc::vgpu
