#pragma once

// Generic implementation of every simd::Ops kernel, parameterized over a
// backend vector trait V (see simd_scalar.cpp for the trait contract). Each
// backend translation unit instantiates detail::make_ops<V>() under its own
// target flags; this header contains no ISA-specific code.
//
// Bit-identity rules observed throughout:
//  * vector min/max use x86 MINPD/MAXPD ternary semantics: min(a,b) is
//    `a < b ? a : b` (NaN or equal-with-±0 picks b). Scalar tails use the
//    s_min/s_max helpers below, which spell out the same ternary, so every
//    lane -- vector or tail -- folds identically.
//  * two absolute values exist: abs() clears the sign bit (std::fabs) and
//    sel_abs() is the compare-select `x < 0 ? -x : x` (preserves -0.0) used
//    by zc::pwr_error's denominator.
//  * no FMA: every multiply and add is a separate, exactly-rounded op, and
//    backend TUs are never compiled with -mfma, so no contraction happens.
//  * accumulator updates keep the scalar idioms' operand order:
//    `acc = std::min(acc, v)` is min(v, acc), `acc += v` is acc + v.

#include <cmath>
#include <cstring>

#include "simd.hpp"

namespace cuzc::vgpu::simd::detail {

// Scalar reference semantics shared by every tail loop (and, via the
// scalar trait, the whole scalar backend).
[[nodiscard]] inline double s_min(double a, double b) noexcept { return a < b ? a : b; }
[[nodiscard]] inline double s_max(double a, double b) noexcept { return a > b ? a : b; }
[[nodiscard]] inline double s_sel_abs(double x) noexcept { return x < 0 ? -x : x; }
[[nodiscard]] inline double s_pwr(double x, double y, double eps) noexcept {
    const double ax = s_sel_abs(x);
    return (y - x) / s_max(ax, eps);
}

template <class V>
struct Kernels {
    using reg = typename V::reg;
    static constexpr std::size_t W = V::W;

    // ---- conversions ----------------------------------------------------

    static void cvt(double* dst, const float* src, std::size_t n) {
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::storeu(dst + i, V::cvt_f32(src + i));
        for (; i < n; ++i) dst[i] = static_cast<double>(src[i]);
    }

    /// Whether the strided-gather fast path applies: the backend must have a
    /// hardware gather hook and the lane indices must fit its signed 32-bit
    /// index arithmetic.
    [[nodiscard]] static constexpr bool gather_ok([[maybe_unused]] std::size_t stride) noexcept {
        if constexpr (requires(const float* p, std::size_t s) { V::gather_cvt_f32(p, s); }) {
            return stride <= (std::size_t{1} << 28);
        } else {
            return false;
        }
    }

    static void cvt_strided(double* dst, const float* src, std::size_t stride, std::size_t n) {
        std::size_t i = 0;
        if constexpr (requires(const float* p, std::size_t s) { V::gather_cvt_f32(p, s); }) {
            if (gather_ok(stride)) {
                for (; i + W <= n; i += W) {
                    V::storeu(dst + i, V::gather_cvt_f32(src + i * stride, stride));
                }
            }
        }
        for (; i < n; ++i) dst[i] = static_cast<double>(src[i * stride]);
    }

    static void cvt_store(float* dst, const double* src, std::size_t n) {
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::store_f32(dst + i, V::loadu(src + i));
        for (; i < n; ++i) dst[i] = static_cast<float>(src[i]);
    }

    static void sub_cvt(double* dst, const float* a, const float* b, std::size_t n) {
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::storeu(dst + i, V::sub(V::cvt_f32(a + i), V::cvt_f32(b + i)));
        for (; i < n; ++i) dst[i] = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    }

    static void sub_cvt_strided(double* dst, const float* a, const float* b, std::size_t stride,
                                std::size_t n) {
        std::size_t i = 0;
        if constexpr (requires(const float* p, std::size_t s) { V::gather_cvt_f32(p, s); }) {
            if (gather_ok(stride)) {
                for (; i + W <= n; i += W) {
                    const std::size_t k = i * stride;
                    V::storeu(dst + i, V::sub(V::gather_cvt_f32(a + k, stride),
                                              V::gather_cvt_f32(b + k, stride)));
                }
            }
        }
        for (; i < n; ++i) {
            const std::size_t k = i * stride;
            dst[i] = static_cast<double>(a[k]) - static_cast<double>(b[k]);
        }
    }

    // ---- elementwise double slabs ---------------------------------------

    static void sub(double* dst, const double* a, const double* b, std::size_t n) {
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::storeu(dst + i, V::sub(V::loadu(a + i), V::loadu(b + i)));
        for (; i < n; ++i) dst[i] = a[i] - b[i];
    }

    static void sub_scalar(double* dst, const double* a, double s, std::size_t n) {
        const reg vs = V::bcast(s);
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::storeu(dst + i, V::sub(V::loadu(a + i), vs));
        for (; i < n; ++i) dst[i] = a[i] - s;
    }

    static void mul(double* dst, const double* a, const double* b, std::size_t n) {
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::storeu(dst + i, V::mul(V::loadu(a + i), V::loadu(b + i)));
        for (; i < n; ++i) dst[i] = a[i] * b[i];
    }

    static void abs_val(double* dst, const double* a, std::size_t n) {
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::storeu(dst + i, V::abs(V::loadu(a + i)));
        for (; i < n; ++i) dst[i] = std::fabs(a[i]);
    }

    static void pwr(double* dst, const double* x, const double* y, double eps, std::size_t n) {
        const reg veps = V::bcast(eps);
        std::size_t i = 0;
        for (; i + W <= n; i += W) {
            const reg vx = V::loadu(x + i);
            const reg vy = V::loadu(y + i);
            V::storeu(dst + i, V::div(V::sub(vy, vx), V::vmax(V::sel_abs(vx), veps)));
        }
        for (; i < n; ++i) dst[i] = s_pwr(x[i], y[i], eps);
    }

    static void pwr_cvt(double* dst, const float* x, const float* y, double eps, std::size_t n) {
        const reg veps = V::bcast(eps);
        std::size_t i = 0;
        for (; i + W <= n; i += W) {
            const reg vx = V::cvt_f32(x + i);
            const reg vy = V::cvt_f32(y + i);
            V::storeu(dst + i, V::div(V::sub(vy, vx), V::vmax(V::sel_abs(vx), veps)));
        }
        for (; i < n; ++i) {
            dst[i] = s_pwr(static_cast<double>(x[i]), static_cast<double>(y[i]), eps);
        }
    }

    // ---- accumulator commits (acc[i] = op(v[i], acc[i])) ----------------

    static void add_acc(double* acc, const double* v, std::size_t n) {
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::storeu(acc + i, V::add(V::loadu(acc + i), V::loadu(v + i)));
        for (; i < n; ++i) acc[i] = acc[i] + v[i];
    }

    static void min_acc(double* acc, const double* v, std::size_t n) {
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::storeu(acc + i, V::vmin(V::loadu(v + i), V::loadu(acc + i)));
        for (; i < n; ++i) acc[i] = s_min(v[i], acc[i]);
    }

    static void max_acc(double* acc, const double* v, std::size_t n) {
        std::size_t i = 0;
        for (; i + W <= n; i += W) V::storeu(acc + i, V::vmax(V::loadu(v + i), V::loadu(acc + i)));
        for (; i < n; ++i) acc[i] = s_max(v[i], acc[i]);
    }

    static void add_acc_strided(double* acc, std::size_t stride, const double* v, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) acc[i * stride] = acc[i * stride] + v[i];
    }

    static void min_acc_strided(double* acc, std::size_t stride, const double* v, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) acc[i * stride] = s_min(v[i], acc[i * stride]);
    }

    static void max_acc_strided(double* acc, std::size_t stride, const double* v, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) acc[i * stride] = s_max(v[i], acc[i * stride]);
    }

    // ---- histogram binning ----------------------------------------------

    static void pdf_bins(std::int32_t* dst, const double* v, double lo, double range,
                         std::int32_t bins, std::size_t n) {
        const double binsd = static_cast<double>(bins);
        const reg vlo = V::bcast(lo);
        const reg vrange = V::bcast(range);
        const reg vbins = V::bcast(binsd);
        double q[64];
        std::size_t i = 0;
        while (i < n) {
            const std::size_t c = n - i < 64 ? n - i : 64;
            std::size_t k = 0;
            for (; k + W <= c; k += W) {
                V::storeu(q + k,
                          V::mul(V::div(V::sub(V::loadu(v + i + k), vlo), vrange), vbins));
            }
            for (; k < c; ++k) q[k] = (v[i + k] - lo) / range * binsd;
            // The truncating cast and clamp stay scalar on every backend so
            // out-of-range behaviour matches zc::pdf_bin's exactly.
            for (k = 0; k < c; ++k) {
                auto b = static_cast<std::int32_t>(q[k]);
                if (b < 0) b = 0;
                if (b >= bins) b = bins - 1;
                dst[i + k] = b;
            }
            i += c;
        }
    }

    // ---- fused pattern rows ---------------------------------------------

    static void p1_update(const float* po, const float* pd, std::size_t stride, double eps,
                          double* acc, std::size_t acc_stride, std::uint32_t n) {
        const reg veps = V::bcast(eps);
        const auto row = [&](std::uint32_t slot) { return acc + slot * acc_stride; };
        // Gather-capable backends feed the fused body straight from the
        // strided inputs; the others stage through the stack once. One loop
        // with a loop-invariant branch keeps the 15-slot body inlined.
        bool gathered = false;
        if constexpr (requires(const float* p, std::size_t s) { V::gather_cvt_f32(p, s); }) {
            gathered = gather_ok(stride);
        }
        double xs[32], ys[32];
        if (n >= W && !gathered) {
            cvt_strided(xs, po, stride, n);
            cvt_strided(ys, pd, stride, n);
        }
        std::uint32_t j = 0;
        for (; j + W <= n; j += W) {
            reg x, y;
            if constexpr (requires(const float* p, std::size_t s) { V::gather_cvt_f32(p, s); }) {
                if (gathered) {
                    x = V::gather_cvt_f32(po + j * stride, stride);
                    y = V::gather_cvt_f32(pd + j * stride, stride);
                } else {
                    x = V::loadu(xs + j);
                    y = V::loadu(ys + j);
                }
            } else {
                x = V::loadu(xs + j);
                y = V::loadu(ys + j);
            }
            const reg e = V::sub(y, x);
            const reg p = V::div(e, V::vmax(V::sel_abs(x), veps));
            const auto amin = [&](std::uint32_t s, reg v) {
                V::storeu(row(s) + j, V::vmin(v, V::loadu(row(s) + j)));
            };
            const auto amax = [&](std::uint32_t s, reg v) {
                V::storeu(row(s) + j, V::vmax(v, V::loadu(row(s) + j)));
            };
            const auto aadd = [&](std::uint32_t s, reg v) {
                V::storeu(row(s) + j, V::add(V::loadu(row(s) + j), v));
            };
            amin(kP1MinErr, e);
            amax(kP1MaxErr, e);
            aadd(kP1SumErr, e);
            aadd(kP1SumAbsErr, V::abs(e));
            aadd(kP1SumErrSq, V::mul(e, e));
            amin(kP1MinPwr, p);
            amax(kP1MaxPwr, p);
            aadd(kP1SumPwrAbs, V::abs(p));
            amin(kP1MinVal, x);
            amax(kP1MaxVal, x);
            aadd(kP1SumVal, x);
            aadd(kP1SumValSq, V::mul(x, x));
            aadd(kP1SumDec, y);
            aadd(kP1SumDecSq, V::mul(y, y));
            aadd(kP1SumCross, V::mul(x, y));
        }
        for (; j < n; ++j) {
            const double x = static_cast<double>(po[j * stride]);
            const double y = static_cast<double>(pd[j * stride]);
            const double e = y - x;
            const double p = s_pwr(x, y, eps);
            row(kP1MinErr)[j] = s_min(e, row(kP1MinErr)[j]);
            row(kP1MaxErr)[j] = s_max(e, row(kP1MaxErr)[j]);
            row(kP1SumErr)[j] += e;
            row(kP1SumAbsErr)[j] += std::fabs(e);
            row(kP1SumErrSq)[j] += e * e;
            row(kP1MinPwr)[j] = s_min(p, row(kP1MinPwr)[j]);
            row(kP1MaxPwr)[j] = s_max(p, row(kP1MaxPwr)[j]);
            row(kP1SumPwrAbs)[j] += std::fabs(p);
            row(kP1MinVal)[j] = s_min(x, row(kP1MinVal)[j]);
            row(kP1MaxVal)[j] = s_max(x, row(kP1MaxVal)[j]);
            row(kP1SumVal)[j] += x;
            row(kP1SumValSq)[j] += x * x;
            row(kP1SumDec)[j] += y;
            row(kP1SumDecSq)[j] += y * y;
            row(kP1SumCross)[j] += x * y;
        }
    }

    static void p3_strip_fold(const double* v1, const double* v2, std::uint32_t lanes,
                              std::uint32_t wx, double* out) {
        // out slot order: min1 max1 sum1 sumsq1 min2 max2 sum2 sumsq2 cross.
        double* mn1 = out + 0 * 32;
        double* mx1 = out + 1 * 32;
        double* s1 = out + 2 * 32;
        double* ss1 = out + 3 * 32;
        double* mn2 = out + 4 * 32;
        double* mx2 = out + 5 * 32;
        double* s2 = out + 6 * 32;
        double* ss2 = out + 7 * 32;
        double* cr = out + 8 * 32;
        for (std::uint32_t ln = 0; ln < lanes; ++ln) {
            const double d1 = v1[ln], d2 = v2[ln];
            mn1[ln] = d1;
            mx1[ln] = d1;
            s1[ln] = d1;
            ss1[ln] = d1 * d1;
            mn2[ln] = d2;
            mx2[ln] = d2;
            s2[ln] = d2;
            ss2[ln] = d2 * d2;
            cr[ln] = d1 * d2;
        }
        double g1s[32], g2s[32];
        for (std::uint32_t off = 1; off < wx; ++off) {
            // Shifted lane vectors: out-of-range sources keep the lane's own
            // value, exactly as shfl_down does.
            const std::uint32_t shifted = lanes > off ? lanes - off : 0;
            std::memcpy(g1s, v1 + off, shifted * sizeof(double));
            std::memcpy(g2s, v2 + off, shifted * sizeof(double));
            for (std::uint32_t ln = shifted; ln < lanes; ++ln) {
                g1s[ln] = v1[ln];
                g2s[ln] = v2[ln];
            }
            std::uint32_t ln = 0;
            for (; ln + W <= lanes; ln += W) {
                const reg g1 = V::loadu(g1s + ln);
                const reg g2 = V::loadu(g2s + ln);
                V::storeu(mn1 + ln, V::vmin(g1, V::loadu(mn1 + ln)));
                V::storeu(mx1 + ln, V::vmax(g1, V::loadu(mx1 + ln)));
                V::storeu(s1 + ln, V::add(V::loadu(s1 + ln), g1));
                V::storeu(ss1 + ln, V::add(V::loadu(ss1 + ln), V::mul(g1, g1)));
                V::storeu(mn2 + ln, V::vmin(g2, V::loadu(mn2 + ln)));
                V::storeu(mx2 + ln, V::vmax(g2, V::loadu(mx2 + ln)));
                V::storeu(s2 + ln, V::add(V::loadu(s2 + ln), g2));
                V::storeu(ss2 + ln, V::add(V::loadu(ss2 + ln), V::mul(g2, g2)));
                V::storeu(cr + ln, V::add(V::loadu(cr + ln), V::mul(g1, g2)));
            }
            for (; ln < lanes; ++ln) {
                const double g1 = g1s[ln], g2 = g2s[ln];
                mn1[ln] = s_min(g1, mn1[ln]);
                mx1[ln] = s_max(g1, mx1[ln]);
                s1[ln] += g1;
                ss1[ln] += g1 * g1;
                mn2[ln] = s_min(g2, mn2[ln]);
                mx2[ln] = s_max(g2, mx2[ln]);
                s2[ln] += g2;
                ss2[ln] += g2 * g2;
                cr[ln] += g1 * g2;
            }
        }
    }

    static void p2_deriv_row(const P2DerivRow& a) {
        constexpr std::uint32_t kSumO = 0, kMaxO = 1, kSumD = 2, kMaxD = 3, kSumSqDiff = 4,
                                kAxisO = 5, kAxisD = 6, kDerivSlots = 7, kCountSlot = 14;
        const std::size_t st = a.acc_stride;
        const reg two = V::bcast(2.0);
        const reg one = V::bcast(1.0);
        const reg zero = V::bcast(0.0);
        const auto fold_v = [&](std::uint32_t base, std::uint32_t j, reg gox, reg goy, reg goz,
                                reg gdx, reg gdy, reg gdz, reg* mo_out, reg* md_out) {
            const reg mo = V::sqrt(
                V::add(V::add(V::mul(gox, gox), V::mul(goy, goy)), V::mul(goz, goz)));
            const reg md = V::sqrt(
                V::add(V::add(V::mul(gdx, gdx), V::mul(gdy, gdy)), V::mul(gdz, gdz)));
            double* p;
            p = a.acc + (base + kSumO) * st + j;
            V::storeu(p, V::add(V::loadu(p), mo));
            p = a.acc + (base + kMaxO) * st + j;
            V::storeu(p, V::vmax(mo, V::loadu(p)));
            p = a.acc + (base + kSumD) * st + j;
            V::storeu(p, V::add(V::loadu(p), md));
            p = a.acc + (base + kMaxD) * st + j;
            V::storeu(p, V::vmax(md, V::loadu(p)));
            const reg diff = V::sub(md, mo);
            p = a.acc + (base + kSumSqDiff) * st + j;
            V::storeu(p, V::add(V::loadu(p), V::mul(diff, diff)));
            p = a.acc + (base + kAxisO) * st + j;
            V::storeu(p, V::add(V::loadu(p), V::add(V::add(gox, goy), goz)));
            p = a.acc + (base + kAxisD) * st + j;
            V::storeu(p, V::add(V::loadu(p), V::add(V::add(gdx, gdy), gdz)));
            if (mo_out) *mo_out = mo;
            if (md_out) *md_out = md;
        };
        std::uint32_t j = 0;
        for (; j + W <= a.n; j += W) {
            const reg oc = V::loadu(a.oc + j);
            const reg dc = V::loadu(a.dc + j);
            if (a.do_order1) {
                reg gox = zero, goy = zero, goz = zero, gdx = zero, gdy = zero, gdz = zero;
                if (a.have_x) {
                    gox = V::div(V::sub(V::loadu(a.oxp + j), V::loadu(a.oxm + j)), two);
                    gdx = V::div(V::sub(V::loadu(a.dxp + j), V::loadu(a.dxm + j)), two);
                }
                if (a.have_y) {
                    goy = V::div(V::sub(V::loadu(a.oc + j + 1), V::loadu(a.oc + j - 1)), two);
                    gdy = V::div(V::sub(V::loadu(a.dc + j + 1), V::loadu(a.dc + j - 1)), two);
                }
                if (a.have_z) {
                    goz = V::div(V::sub(V::loadu(a.ozp + j), V::loadu(a.ozm + j)), two);
                    gdz = V::div(V::sub(V::loadu(a.dzp + j), V::loadu(a.dzm + j)), two);
                }
                reg mo, md;
                fold_v(0, j, gox, goy, goz, gdx, gdy, gdz, &mo, &md);
                V::storeu(a.mo1 + j, mo);
                V::storeu(a.md1 + j, md);
            }
            if (a.do_order2) {
                reg gox = zero, goy = zero, goz = zero, gdx = zero, gdy = zero, gdz = zero;
                const reg oc2 = V::mul(two, oc);
                const reg dc2 = V::mul(two, dc);
                if (a.have_x) {
                    gox = V::add(V::sub(V::loadu(a.oxp + j), oc2), V::loadu(a.oxm + j));
                    gdx = V::add(V::sub(V::loadu(a.dxp + j), dc2), V::loadu(a.dxm + j));
                }
                if (a.have_y) {
                    goy = V::add(V::sub(V::loadu(a.oc + j + 1), oc2), V::loadu(a.oc + j - 1));
                    gdy = V::add(V::sub(V::loadu(a.dc + j + 1), dc2), V::loadu(a.dc + j - 1));
                }
                if (a.have_z) {
                    goz = V::add(V::sub(V::loadu(a.ozp + j), oc2), V::loadu(a.ozm + j));
                    gdz = V::add(V::sub(V::loadu(a.dzp + j), dc2), V::loadu(a.dzm + j));
                }
                fold_v(kDerivSlots, j, gox, goy, goz, gdx, gdy, gdz, nullptr, nullptr);
            }
            double* pc = a.acc + kCountSlot * st + j;
            V::storeu(pc, V::add(V::loadu(pc), one));
        }
        for (; j < a.n; ++j) {
            const double oc = a.oc[j], dc = a.dc[j];
            // Neighbour access via pointers: `a.oc[j - 1]` would compute
            // j - 1 in uint32 and wrap at j == 0.
            const double* ocj = a.oc + j;
            const double* dcj = a.dc + j;
            const auto fold_s = [&](std::uint32_t base, double gox, double goy, double goz,
                                    double gdx, double gdy, double gdz, double* mo_out,
                                    double* md_out) {
                const double mo = std::sqrt(gox * gox + goy * goy + goz * goz);
                const double md = std::sqrt(gdx * gdx + gdy * gdy + gdz * gdz);
                a.acc[(base + kSumO) * st + j] += mo;
                a.acc[(base + kMaxO) * st + j] = s_max(mo, a.acc[(base + kMaxO) * st + j]);
                a.acc[(base + kSumD) * st + j] += md;
                a.acc[(base + kMaxD) * st + j] = s_max(md, a.acc[(base + kMaxD) * st + j]);
                const double diff = md - mo;
                a.acc[(base + kSumSqDiff) * st + j] += diff * diff;
                a.acc[(base + kAxisO) * st + j] += gox + goy + goz;
                a.acc[(base + kAxisD) * st + j] += gdx + gdy + gdz;
                if (mo_out) *mo_out = mo;
                if (md_out) *md_out = md;
            };
            if (a.do_order1) {
                double mo, md;
                fold_s(0, a.have_x ? (a.oxp[j] - a.oxm[j]) / 2 : 0.0,
                       a.have_y ? (ocj[1] - ocj[-1]) / 2 : 0.0,
                       a.have_z ? (a.ozp[j] - a.ozm[j]) / 2 : 0.0,
                       a.have_x ? (a.dxp[j] - a.dxm[j]) / 2 : 0.0,
                       a.have_y ? (dcj[1] - dcj[-1]) / 2 : 0.0,
                       a.have_z ? (a.dzp[j] - a.dzm[j]) / 2 : 0.0, &mo, &md);
                a.mo1[j] = mo;
                a.md1[j] = md;
            }
            if (a.do_order2) {
                fold_s(kDerivSlots, a.have_x ? a.oxp[j] - 2 * oc + a.oxm[j] : 0.0,
                       a.have_y ? ocj[1] - 2 * oc + ocj[-1] : 0.0,
                       a.have_z ? a.ozp[j] - 2 * oc + a.ozm[j] : 0.0,
                       a.have_x ? a.dxp[j] - 2 * dc + a.dxm[j] : 0.0,
                       a.have_y ? dcj[1] - 2 * dc + dcj[-1] : 0.0,
                       a.have_z ? a.dzp[j] - 2 * dc + a.dzm[j] : 0.0, nullptr, nullptr);
            }
            a.acc[kCountSlot * st + j] += 1.0;
        }
    }

    static void p2_lag_xy(double* acc, const double* cur, const double* xnb, const double* ynb,
                          double mean, double scale, std::size_t n) {
        const reg vmean = V::bcast(mean);
        const reg vscale = V::bcast(scale);
        const reg zero = V::bcast(0.0);
        std::size_t j = 0;
        for (; j + W <= n; j += W) {
            reg nb = zero;
            if (xnb) nb = V::add(nb, V::sub(V::loadu(xnb + j), vmean));
            if (ynb) nb = V::add(nb, V::sub(V::loadu(ynb + j), vmean));
            V::storeu(acc + j,
                      V::add(V::loadu(acc + j), V::mul(V::mul(V::loadu(cur + j), nb), vscale)));
        }
        for (; j < n; ++j) {
            double nb = 0.0;
            if (xnb) nb += xnb[j] - mean;
            if (ynb) nb += ynb[j] - mean;
            acc[j] += cur[j] * nb * scale;
        }
    }

    static void p2_lag_z(double* acc, const double* cur, const double* oldv, double mean,
                         double scale, std::size_t n) {
        const reg vmean = V::bcast(mean);
        const reg vscale = V::bcast(scale);
        std::size_t j = 0;
        for (; j + W <= n; j += W) {
            const reg e_old = V::sub(V::loadu(oldv + j), vmean);
            V::storeu(acc + j, V::add(V::loadu(acc + j),
                                      V::mul(V::mul(e_old, V::loadu(cur + j)), vscale)));
        }
        for (; j < n; ++j) acc[j] += (oldv[j] - mean) * cur[j] * scale;
    }

    // ---- fixed-tree lane reductions -------------------------------------

    template <class F, class FV>
    static double tree_reduce(const double* lanes, std::uint32_t n, F f, FV fv) {
        if (n == 0) return 0.0;
        double buf[32];
        std::memcpy(buf, lanes, n * sizeof(double));
        for (std::uint32_t off = 16; off >= 1; off >>= 1) {
            if (n <= off) continue;
            const std::uint32_t m = n - off;
            std::uint32_t l = 0;
            // In-round reads are always ahead of writes (l + off > l), so
            // the vector form sees the same pre-round values the ascending
            // scalar fold does.
            for (; l + W <= m; l += W) {
                V::storeu(buf + l, fv(V::loadu(buf + l), V::loadu(buf + l + off)));
            }
            for (; l < m; ++l) buf[l] = f(buf[l], buf[l + off]);
        }
        return buf[0];
    }

    static double reduce_sum(const double* lanes, std::uint32_t n) {
        return tree_reduce(
            lanes, n, [](double a, double b) { return a + b; },
            [](reg a, reg b) { return V::add(a, b); });
    }
    static double reduce_min(const double* lanes, std::uint32_t n) {
        return tree_reduce(lanes, n, &s_min, [](reg a, reg b) { return V::vmin(a, b); });
    }
    static double reduce_max(const double* lanes, std::uint32_t n) {
        return tree_reduce(lanes, n, &s_max, [](reg a, reg b) { return V::vmax(a, b); });
    }
};

template <class V>
[[nodiscard]] Ops make_ops(const char* name, Backend backend) {
    using K = Kernels<V>;
    Ops t{};
    t.name = name;
    t.backend = backend;
    t.width = V::W;
    t.cvt = &K::cvt;
    t.cvt_strided = &K::cvt_strided;
    t.cvt_store = &K::cvt_store;
    t.sub_cvt = &K::sub_cvt;
    t.sub_cvt_strided = &K::sub_cvt_strided;
    t.sub = &K::sub;
    t.sub_scalar = &K::sub_scalar;
    t.mul = &K::mul;
    t.abs_val = &K::abs_val;
    t.pwr = &K::pwr;
    t.pwr_cvt = &K::pwr_cvt;
    t.add_acc = &K::add_acc;
    t.min_acc = &K::min_acc;
    t.max_acc = &K::max_acc;
    t.add_acc_strided = &K::add_acc_strided;
    t.min_acc_strided = &K::min_acc_strided;
    t.max_acc_strided = &K::max_acc_strided;
    t.pdf_bins = &K::pdf_bins;
    t.p1_update = &K::p1_update;
    t.p3_strip_fold = &K::p3_strip_fold;
    t.p2_deriv_row = &K::p2_deriv_row;
    t.p2_lag_xy = &K::p2_lag_xy;
    t.p2_lag_z = &K::p2_lag_z;
    t.reduce_sum = &K::reduce_sum;
    t.reduce_min = &K::reduce_min;
    t.reduce_max = &K::reduce_max;
    return t;
}

}  // namespace cuzc::vgpu::simd::detail
