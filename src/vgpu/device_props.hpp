#pragma once

#include <cstdint>

namespace cuzc::vgpu {

/// Architectural limits of the modeled device. Defaults describe an
/// NVIDIA Tesla V100 (Volta, SM 7.0), the evaluation platform of the
/// cuZ-Checker paper: 80 SMs, 64 CUDA cores per SM, 64K 32-bit registers
/// per SM, 96 KiB shared memory per SM (48 KiB default per-block carve-out),
/// 2048 resident threads and at most 32 resident blocks per SM.
struct DeviceProps {
    std::uint32_t warp_size = 32;
    std::uint32_t num_sms = 80;
    std::uint32_t cores_per_sm = 64;
    std::uint32_t max_threads_per_block = 1024;
    std::uint32_t max_threads_per_sm = 2048;
    std::uint32_t max_blocks_per_sm = 32;
    std::uint32_t regs_per_sm = 64 * 1024;
    std::uint32_t max_regs_per_thread = 255;
    std::uint64_t smem_per_sm = 96 * 1024;
    std::uint64_t smem_per_block = 48 * 1024;
    std::uint64_t global_mem_bytes = 32ull * 1024 * 1024 * 1024;
    double core_clock_ghz = 1.38;

    [[nodiscard]] static DeviceProps v100() { return DeviceProps{}; }
};

}  // namespace cuzc::vgpu
