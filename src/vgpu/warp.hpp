#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "profiler.hpp"
#include "thread_ctx.hpp"

namespace cuzc::vgpu {

inline constexpr std::uint32_t kWarpSize = 32;
inline constexpr std::uint32_t kFullMask = 0xffffffffu;

/// One warp of a block during kernel execution. Exposes CUDA's warp-level
/// collectives with their real semantics: `ballot` builds an active-lane
/// mask from a per-lane predicate; the `shfl_*` family reads another lane's
/// register value. Shuffles read the *pre-shuffle* values of all lanes
/// (they are collective exchanges, not sequential moves), which the
/// implementation guarantees by gathering into a temporary lane vector.
class WarpCtx {
public:
    WarpCtx(std::uint32_t warp_id, std::uint32_t base_linear, std::uint32_t active_lanes,
            KernelStats* stats) noexcept
        : warp_id_(warp_id), base_(base_linear), lanes_(active_lanes), stats_(stats) {}

    [[nodiscard]] std::uint32_t warp_id() const noexcept { return warp_id_; }
    [[nodiscard]] std::uint32_t base_linear() const noexcept { return base_; }
    /// Number of lanes backed by real threads (< 32 only in a trailing warp).
    [[nodiscard]] std::uint32_t active_lanes() const noexcept { return lanes_; }

    [[nodiscard]] bool lane_in(std::uint32_t lane, std::uint32_t mask) const noexcept {
        return lane < lanes_ && ((mask >> lane) & 1u) != 0;
    }

    /// Bulk-charge `n` shuffle operations. The warp-fused counterpart of the
    /// span bulk accessors: a kernel that computes an exchange pattern with
    /// plain lane loops (instead of per-offset `shfl_*` calls) charges the
    /// same shuffle count in one add.
    void add_shuffles(std::uint64_t n) const noexcept { stats_->shuffle_ops += n; }

    /// Bulk-charge `n` lane combine ops — pairs with `add_shuffles` when a
    /// tree reduction is computed with `lane_reduce_*` instead of per-offset
    /// `reduce_shfl_down` rounds (which charge one lane op per active lane
    /// per round).
    void add_lane_ops(std::uint64_t n) const noexcept { stats_->lane_ops += n; }

    /// __ballot_sync: evaluate `pred(lane)` for every active lane and pack
    /// the results into a 32-bit mask.
    template <class Pred>
    [[nodiscard]] std::uint32_t ballot(Pred&& pred) const {
        std::uint32_t mask = 0;
        for (std::uint32_t l = 0; l < lanes_; ++l) {
            if (pred(l)) mask |= (1u << l);
        }
        return mask;
    }

    /// __shfl_down_sync on a register slot: lane i receives the value held
    /// by lane i+delta; lanes whose source is out of range or outside the
    /// mask keep their own value (the well-defined subset of CUDA's
    /// behaviour that reduction code relies on).
    template <class T>
    [[nodiscard]] std::array<T, kWarpSize> shfl_down(const RegArray<T>& reg, std::uint32_t slot,
                                                     std::uint32_t delta,
                                                     std::uint32_t mask = kFullMask) const {
        std::array<T, kWarpSize> out{};
        stats_->shuffle_ops += lanes_;
        for (std::uint32_t l = 0; l < lanes_; ++l) {
            const std::uint32_t src = l + delta;
            out[l] = lane_in(src, mask) ? reg.at(base_ + src, slot) : reg.at(base_ + l, slot);
        }
        return out;
    }

    /// __shfl_up_sync: lane i receives the value of lane i-delta.
    template <class T>
    [[nodiscard]] std::array<T, kWarpSize> shfl_up(const RegArray<T>& reg, std::uint32_t slot,
                                                   std::uint32_t delta,
                                                   std::uint32_t mask = kFullMask) const {
        std::array<T, kWarpSize> out{};
        stats_->shuffle_ops += lanes_;
        for (std::uint32_t l = 0; l < lanes_; ++l) {
            const bool ok = l >= delta && lane_in(l - delta, mask);
            out[l] = ok ? reg.at(base_ + (l - delta), slot) : reg.at(base_ + l, slot);
        }
        return out;
    }

    /// __shfl_xor_sync: lane i exchanges with lane i^laneMask.
    template <class T>
    [[nodiscard]] std::array<T, kWarpSize> shfl_xor(const RegArray<T>& reg, std::uint32_t slot,
                                                    std::uint32_t lane_mask,
                                                    std::uint32_t mask = kFullMask) const {
        std::array<T, kWarpSize> out{};
        stats_->shuffle_ops += lanes_;
        for (std::uint32_t l = 0; l < lanes_; ++l) {
            const std::uint32_t src = l ^ lane_mask;
            out[l] = lane_in(src, mask) ? reg.at(base_ + src, slot) : reg.at(base_ + l, slot);
        }
        return out;
    }

    /// Streaming shfl_down: invokes `fn(lane, value)` with the value each
    /// lane receives, without materializing a lane array. Charges exactly
    /// like `shfl_down`. `fn` must not modify the source slot (the fused
    /// form reads lanes in ascending order instead of snapshotting them).
    template <class T, class F>
    void shfl_down_each(const RegArray<T>& reg, std::uint32_t slot, std::uint32_t delta, F&& fn,
                        std::uint32_t mask = kFullMask) const {
        stats_->shuffle_ops += lanes_;
        for (std::uint32_t l = 0; l < lanes_; ++l) {
            const std::uint32_t src = l + delta;
            fn(l, reg.at(base_ + (lane_in(src, mask) ? src : l), slot));
        }
    }

    /// Two shfl_downs of the same delta on two slots, fused into one lane
    /// sweep: `fn(lane, a, b)`. Charges as two shuffles. Neither slot may be
    /// modified by `fn`.
    template <class T, class F>
    void shfl_down_each2(const RegArray<T>& reg, std::uint32_t slot_a, std::uint32_t slot_b,
                         std::uint32_t delta, F&& fn, std::uint32_t mask = kFullMask) const {
        stats_->shuffle_ops += 2 * lanes_;
        for (std::uint32_t l = 0; l < lanes_; ++l) {
            const std::uint32_t src = l + delta;
            const std::uint32_t from = base_ + (lane_in(src, mask) ? src : l);
            fn(l, reg.at(from, slot_a), reg.at(from, slot_b));
        }
    }

    /// The canonical warp tree reduction: for offset = 16,8,..,1 combine
    /// each lane's value with shfl_down(offset). After the call lane 0 of
    /// the masked subset holds op-fold of all masked lanes' slot values.
    /// A lane only folds when its shuffle source is a masked lane — the
    /// guard real masked-reduction code needs, since reading an unmasked
    /// lane is undefined in CUDA.
    ///
    /// The fold is done in place, in ascending lane order: lane l's source
    /// l+off has not been folded yet when l is, so the values read are the
    /// pre-round values — identical to snapshotting all lanes first, minus
    /// the 32-element copy per round. Charges match shfl_down + one lane op
    /// per active lane per round.
    template <class T, class Op>
    void reduce_shfl_down(RegArray<T>& reg, std::uint32_t slot, Op&& op,
                          std::uint32_t mask = kFullMask) const {
        for (std::uint32_t off = kWarpSize / 2; off > 0; off >>= 1) {
            stats_->shuffle_ops += lanes_;
            stats_->lane_ops += lanes_;
            for (std::uint32_t l = 0; l < lanes_; ++l) {
                if (lane_in(l, mask) && lane_in(l + off, mask)) {
                    T& mine = reg.at(base_ + l, slot);
                    mine = op(mine, reg.at(base_ + l + off, slot));
                }
            }
        }
    }

private:
    std::uint32_t warp_id_;
    std::uint32_t base_;
    std::uint32_t lanes_;
    KernelStats* stats_;
};

}  // namespace cuzc::vgpu
