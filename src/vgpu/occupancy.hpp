#pragma once

#include <cstdint>
#include <string_view>

#include "device_props.hpp"
#include "profiler.hpp"

namespace cuzc::vgpu {

/// What capped the number of concurrently resident blocks on an SM.
enum class OccupancyLimiter { kRegisters, kSharedMemory, kThreads, kBlocks };

[[nodiscard]] std::string_view to_string(OccupancyLimiter lim) noexcept;

/// Result of the CUDA-style occupancy calculation for one kernel
/// configuration: how many of a kernel's blocks can be resident on one SM
/// at once, which resource is the bottleneck, and the resulting warp
/// occupancy in [0, 1].
struct OccupancyResult {
    std::uint32_t max_blocks_per_sm = 0;
    OccupancyLimiter limiter = OccupancyLimiter::kBlocks;
    double occupancy = 0.0;
};

/// Compute resident blocks/SM the way nvcc's occupancy calculator does:
/// the minimum over the register-file, shared-memory, thread-count, and
/// block-count constraints. Register allocation is modeled per thread
/// (regs_per_thread * threads_per_block <= regs_per_sm per block).
[[nodiscard]] OccupancyResult occupancy(const DeviceProps& props, std::uint32_t threads_per_block,
                                        std::uint32_t regs_per_thread,
                                        std::uint64_t smem_per_block);

/// Occupancy from a measured kernel profile.
[[nodiscard]] OccupancyResult occupancy(const DeviceProps& props, const KernelStats& stats);

/// Blocks of this kernel assigned to each SM (grid spread round-robin over
/// SMs) — the "TB/SM" column of Table II.
[[nodiscard]] std::uint32_t blocks_per_sm(const DeviceProps& props, std::uint64_t grid_blocks);

}  // namespace cuzc::vgpu
