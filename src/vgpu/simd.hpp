#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cuzc::vgpu::simd {

/// Instruction-set backend of the lane engine. Backends are selected at
/// runtime: compile-time detection decides which backends are *built*
/// (AVX2/SSE2 on x86-64, NEON on AArch64, scalar everywhere), CPUID decides
/// which are *usable*, and the `CUZC_SIMD` environment variable (or
/// `force_backend`) overrides the automatic pick.
///
/// Determinism contract: every primitive performs, per lane, exactly the
/// same IEEE-754 operation sequence as the scalar reference — only the
/// number of lanes evaluated per instruction changes. All operations used
/// (add/sub/mul/div/sqrt, compare-select min/max, sign manipulation,
/// f32<->f64 conversion, truncating f64->i32) are exactly rounded or exact,
/// and no FMA contraction is permitted, so results are bit-identical across
/// all backends and to the pre-SIMD scalar loops.
enum class Backend : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

/// Accumulator slot order of `Ops::p1_update`. Must match the Slot enum of
/// the pattern-1 fused kernel (static_asserted there).
enum P1Slot : std::uint32_t {
    kP1MinErr, kP1MaxErr, kP1SumErr, kP1SumAbsErr, kP1SumErrSq,
    kP1MinPwr, kP1MaxPwr, kP1SumPwrAbs,
    kP1MinVal, kP1MaxVal, kP1SumVal, kP1SumValSq,
    kP1SumDec, kP1SumDecSq, kP1SumCross,
    kP1NumSlots,
};

/// Strip-value order of `Ops::p3_strip_fold` (matches pattern3's
/// kStripBase..kCross slot window).
inline constexpr std::uint32_t kP3StripVals = 9;

/// Argument block of the fused pattern-2 derivative-row primitive: one
/// row (fixed x) of interior lanes varying along y. Neighbour rows are
/// contiguous double slabs; a null axis pointer pairs with its `have_*`
/// flag being false, in which case that axis' difference is literal 0.0
/// (exactly as the scalar kernel's `active ? ... : 0.0`).
struct P2DerivRow {
    const double* oc = nullptr;  ///< centre row, original (lane j at oc[j]; oc[-1]/oc[n] readable when have_y)
    const double* dc = nullptr;  ///< centre row, decompressed
    const double* oxm = nullptr;  ///< x-1 row, original (null unless have_x)
    const double* oxp = nullptr;  ///< x+1 row, original
    const double* dxm = nullptr;
    const double* dxp = nullptr;
    const double* ozm = nullptr;  ///< z-1 gathered row, original (null unless have_z)
    const double* ozp = nullptr;
    const double* dzm = nullptr;
    const double* dzp = nullptr;
    bool have_x = false, have_y = false, have_z = false;
    bool do_order1 = false, do_order2 = false;
    double* acc = nullptr;        ///< slot-major accumulator: slot s, lane j at acc[s*acc_stride + j]
    std::size_t acc_stride = 0;   ///< slots: [0..6] order-1, [7..13] order-2, [14] count
    double* mo1 = nullptr;        ///< order-1 magnitude outputs (length n; null when !do_order1)
    double* md1 = nullptr;
    std::uint32_t n = 0;
};

/// Function-pointer table of one backend's lane kernels. All `acc`
/// arguments are updated in place with `acc[i] = op(v[i], acc[i])`
/// compare-select semantics matching the scalar accumulation idioms
/// (`std::min(acc, v)` == minpd(v, acc), `std::max(acc, v)` == maxpd(v,
/// acc)); `v` inputs are never modified.
struct Ops {
    const char* name;
    Backend backend;
    std::size_t width;  ///< f64 lanes per register (1/2/4)

    // -- conversions ------------------------------------------------------
    void (*cvt)(double* dst, const float* src, std::size_t n);
    void (*cvt_strided)(double* dst, const float* src, std::size_t stride, std::size_t n);
    void (*cvt_store)(float* dst, const double* src, std::size_t n);
    void (*sub_cvt)(double* dst, const float* a, const float* b, std::size_t n);
    void (*sub_cvt_strided)(double* dst, const float* a, const float* b, std::size_t stride,
                            std::size_t n);

    // -- elementwise double slabs ----------------------------------------
    void (*sub)(double* dst, const double* a, const double* b, std::size_t n);
    void (*sub_scalar)(double* dst, const double* a, double s, std::size_t n);
    void (*mul)(double* dst, const double* a, const double* b, std::size_t n);
    void (*abs_val)(double* dst, const double* a, std::size_t n);
    void (*pwr)(double* dst, const double* x, const double* y, double eps, std::size_t n);
    void (*pwr_cvt)(double* dst, const float* x, const float* y, double eps, std::size_t n);

    // -- accumulator commits ---------------------------------------------
    void (*add_acc)(double* acc, const double* v, std::size_t n);
    void (*min_acc)(double* acc, const double* v, std::size_t n);
    void (*max_acc)(double* acc, const double* v, std::size_t n);
    void (*add_acc_strided)(double* acc, std::size_t stride, const double* v, std::size_t n);
    void (*min_acc_strided)(double* acc, std::size_t stride, const double* v, std::size_t n);
    void (*max_acc_strided)(double* acc, std::size_t stride, const double* v, std::size_t n);

    // -- histogram binning ------------------------------------------------
    /// dst[i] = clamp((int)((v[i] - lo) / range * bins), 0, bins-1); the
    /// division/multiply order matches zc::pdf_bin exactly. The caller
    /// handles the degenerate !(hi > lo) case.
    void (*pdf_bins)(std::int32_t* dst, const double* v, double lo, double range,
                     std::int32_t bins, std::size_t n);

    // -- fused pattern rows ----------------------------------------------
    /// Pattern-1 fused 15-slot update of n warp lanes: lane j reads
    /// po[j*stride]/pd[j*stride] and updates acc[slot*acc_stride + j] for
    /// every P1Slot in enum order.
    void (*p1_update)(const float* po, const float* pd, std::size_t stride, double eps,
                      double* acc, std::size_t acc_stride, std::uint32_t n);
    /// Pattern-3 SSIM x-strip fold: windows of width wx over the lane
    /// vectors v1/v2 (out-of-range sources clamp to the lane's own value,
    /// as shfl_down does). out is slot-major [kP3StripVals][32].
    void (*p3_strip_fold)(const double* v1, const double* v2, std::uint32_t lanes,
                          std::uint32_t wx, double* out);
    void (*p2_deriv_row)(const P2DerivRow& a);
    /// acc[j] += ((cur[j] * nb) * scale) with nb = 0.0 (+ xnb[j]-mean)
    /// (+ ynb[j]-mean); null neighbour pointers skip their term.
    void (*p2_lag_xy)(double* acc, const double* cur, const double* xnb, const double* ynb,
                      double mean, double scale, std::size_t n);
    /// acc[j] += (((oldv[j] - mean) * cur[j]) * scale)
    void (*p2_lag_z)(double* acc, const double* cur, const double* oldv, double mean,
                     double scale, std::size_t n);

    // -- fixed-tree lane reductions --------------------------------------
    /// Warp-style tree reduction over n <= 32 lane values with the fixed
    /// pairwise order off = 16,8,4,2,1 (fold lane l with l+off when both
    /// < n) — the exact fold sequence of WarpCtx::reduce_shfl_down over a
    /// prefix mask, so the lane-0 result is bit-identical on every backend.
    double (*reduce_sum)(const double* lanes, std::uint32_t n);
    double (*reduce_min)(const double* lanes, std::uint32_t n);
    double (*reduce_max)(const double* lanes, std::uint32_t n);
};

/// The active backend's kernel table. Resolved once: best built+supported
/// backend, overridden by CUZC_SIMD=scalar|sse2|avx2|neon when set (an
/// unusable or unknown value warns on stderr and keeps the automatic pick).
[[nodiscard]] const Ops& ops() noexcept;

[[nodiscard]] Backend active_backend() noexcept;
[[nodiscard]] const char* backend_name(Backend b) noexcept;
/// True when backend `b` is compiled in and supported by this CPU.
[[nodiscard]] bool backend_available(Backend b) noexcept;
/// All usable backends, best first.
[[nodiscard]] std::vector<Backend> available_backends();
/// Test/bench hook: select a specific backend for subsequent ops() calls.
/// Returns false (and leaves the selection unchanged) if unavailable.
bool force_backend(Backend b) noexcept;
/// One-line dispatch banner for benches and the CLI, e.g.
/// "simd=avx2 (available: avx2 sse2 scalar; CUZC_SIMD=unset)".
[[nodiscard]] std::string banner();

}  // namespace cuzc::vgpu::simd

namespace cuzc::vgpu {

/// Warp-style lane reductions over register slots (sum/min/max of up to 32
/// lane values) with a fixed pairwise tree order — see Ops::reduce_sum.
[[nodiscard]] inline double lane_reduce_sum(const double* lanes, std::uint32_t n) noexcept {
    return simd::ops().reduce_sum(lanes, n);
}
[[nodiscard]] inline double lane_reduce_min(const double* lanes, std::uint32_t n) noexcept {
    return simd::ops().reduce_min(lanes, n);
}
[[nodiscard]] inline double lane_reduce_max(const double* lanes, std::uint32_t n) noexcept {
    return simd::ops().reduce_max(lanes, n);
}

}  // namespace cuzc::vgpu
