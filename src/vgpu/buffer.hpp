#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "device.hpp"
#include "zc/field_buffer.hpp"

namespace cuzc::vgpu {

/// RAII allocation in the modeled device's global memory. Host code moves
/// data in/out with `upload`/`download` (counted as PCIe transfers); kernel
/// code accesses elements through a `DeviceSpan` obtained from a `Launch`,
/// which counts every load/store against that launch's `KernelStats`.
///
/// The modeled device memory *is* host memory, so a float buffer can also
/// `adopt` a `zc::FieldRef`: the buffer aliases the ref-counted payload in
/// place (pinning it) instead of memcpy-ing. The modeled PCIe accounting
/// and the fault-injection event stream are identical either way; only the
/// software copy disappears. Mutating entry points (non-const `raw`,
/// `upload`, `fill`) detach from the alias first so shared payloads are
/// never written through a device buffer.
template <class T>
class DeviceBuffer {
public:
    DeviceBuffer(Device& dev, std::size_t n) : dev_(&dev), n_(n) {
        dev.fault_point_alloc(n * sizeof(T));
        mem_.resize(n);
        dev.note_alloc(n * sizeof(T));
    }

    DeviceBuffer(Device& dev, std::span<const T> host) : dev_(&dev), n_(host.size()) {
        dev.fault_point_alloc(host.size_bytes());
        mem_.assign(host.begin(), host.end());
        dev.note_alloc(host.size_bytes());
        dev.note_h2d(host.size_bytes());
        maybe_corrupt(dev.fault_point_upload());
    }

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] std::uint64_t size_bytes() const noexcept { return n_ * sizeof(T); }

    void upload(std::span<const T> host) {
        assert(host.size() == n_);
        detach();
        std::copy(host.begin(), host.end(), mem_.begin());
        dev_->note_h2d(host.size_bytes());
        maybe_corrupt(dev_->fault_point_upload());
    }

    /// Zero-copy upload: alias the field's ref-counted payload instead of
    /// copying it in. Charges the same modeled H2D transfer and draws the
    /// same fault-stream event as `upload`, so counter streams are
    /// bit-identical across the two paths. When the drawn fault corrupts
    /// the upload (or the data plane is forced into legacy copies), the
    /// payload is copied first and the bit flip lands on the private copy
    /// — copy-on-corrupt; a shared payload is never mutated.
    void adopt(const zc::FieldRef& host)
        requires std::is_same_v<T, float>
    {
        assert(host.size() == n_);
        dev_->note_h2d(host.size() * sizeof(float));
        const std::uint64_t h = dev_->fault_point_upload();
        if (h != 0 || zc::data_plane_force_copy() || host.data().data() == nullptr) {
            detach();
            std::copy(host.data().begin(), host.data().end(), mem_.begin());
            zc::data_plane_note_copy(host.size() * sizeof(float));
            maybe_corrupt(h);
            return;
        }
        alias_ = host.data().data();
        guard_ = host.slab();
        zc::data_plane_note_adoption();
    }

    void download(std::span<T> host) const {
        assert(host.size() == n_);
        const T* src = alias_ ? alias_ : mem_.data();
        std::copy(src, src + n_, host.begin());
        dev_->note_d2h(n_ * sizeof(T));
    }

    [[nodiscard]] std::vector<T> download() const {
        dev_->note_d2h(size_bytes());
        if (alias_) return std::vector<T>(alias_, alias_ + n_);
        return mem_;
    }

    void fill(const T& v) {
        detach();
        std::fill(mem_.begin(), mem_.end(), v);
    }

    /// Uncounted access for the host-side runtime itself (e.g. verification);
    /// kernel code must go through DeviceSpan instead. The mutable overload
    /// materializes a private copy first when the buffer aliases a shared
    /// payload (and may therefore allocate).
    [[nodiscard]] T* raw() {
        if (alias_) {
            detach_copy();
        }
        return mem_.data();
    }
    [[nodiscard]] const T* raw() const noexcept { return alias_ ? alias_ : mem_.data(); }

private:
    /// Drop the alias; mem_ holds fresh (unspecified) storage of size n_.
    void detach() {
        if (alias_) {
            alias_ = nullptr;
            guard_.reset();
        }
        if (mem_.size() != n_) mem_.resize(n_);
    }

    /// Drop the alias, preserving the aliased contents (counted copy).
    void detach_copy() {
        const T* src = alias_;
        mem_.assign(src, src + n_);
        zc::data_plane_note_copy(n_ * sizeof(T));
        alias_ = nullptr;
        guard_.reset();
    }

    /// Injected upload corruption: flip one bit of one resident byte, the
    /// position derived from the fault stream's hash (h == 0 means none).
    void maybe_corrupt(std::uint64_t h) noexcept {
        if (h == 0 || mem_.empty()) return;
        auto* bytes = reinterpret_cast<unsigned char*>(mem_.data());
        const std::uint64_t nbytes = mem_.size() * sizeof(T);
        bytes[h % nbytes] ^= static_cast<unsigned char>(1u << ((h >> 32) % 8));
    }

    Device* dev_;
    std::size_t n_ = 0;
    std::vector<T> mem_;
    /// Adopted payload: when set, reads go through alias_ and guard_ pins
    /// the storage; mem_ is the detached/private fallback.
    const T* alias_ = nullptr;
    zc::SlabHandle guard_;
};

/// Kernel-side view of a DeviceBuffer; every `ld`/`st` is charged to the
/// owning launch's global-memory counters. Explicit ld/st (rather than
/// operator[]) keeps global-memory traffic visible in kernel code, mirroring
/// how CUDA kernels are tuned around memory transactions.
///
/// A `DeviceSpan<const T>` (from `Launch::span(const DeviceBuffer<T>&)`)
/// is a read-only view: it only carries a read counter and the store
/// members do not exist.
///
/// Hot loops should use the bulk accessors, which charge a whole access
/// footprint with one counter update and hand back a raw pointer:
///  - `ld_bulk(first, n)` / `st_bulk(first, n)` — a contiguous range;
///  - `ld_footprint(n)` / `st_footprint(n)` — the span's base pointer for
///    loops whose footprint is strided/tiled but whose element count is
///    known exactly (the caller must touch exactly `n` elements).
/// Counter totals are bit-identical to per-element ld/st of the same
/// elements; only the number of counter updates changes.
template <class T>
class DeviceSpan {
public:
    using value_type = std::remove_const_t<T>;

    DeviceSpan(T* data, std::size_t n, std::uint64_t* rd, std::uint64_t* wr) noexcept
        : data_(data), n_(n), rd_(rd), wr_(wr) {}

    [[nodiscard]] std::size_t size() const noexcept { return n_; }

    [[nodiscard]] value_type ld(std::size_t i) const noexcept {
        assert(i < n_);
        *rd_ += sizeof(T);
        return data_[i];
    }

    /// One charged load of `n` contiguous elements starting at `first`.
    [[nodiscard]] const value_type* ld_bulk(std::size_t first, std::size_t n) const noexcept {
        assert(first + n <= n_);
        *rd_ += n * sizeof(T);
        return data_ + first;
    }

    /// Charge `n` element loads and return the span base for a strided or
    /// tiled loop that will read exactly `n` (not necessarily contiguous)
    /// elements through the returned pointer.
    [[nodiscard]] const value_type* ld_footprint(std::size_t n) const noexcept {
        assert(n <= n_);
        *rd_ += n * sizeof(T);
        return data_;
    }

    /// Charge `n` element loads without a range bound — for read-modify-write
    /// loops that revisit elements (e.g. histograms), where the charged count
    /// legitimately exceeds the container size. Returns the span base.
    [[nodiscard]] const value_type* ld_charge(std::size_t n) const noexcept {
        *rd_ += n * sizeof(T);
        return data_;
    }

    /// Strided gather of `n` elements (stride in elements) widened to double,
    /// charged as one `n`-element load — the vector-path replacement for a
    /// per-element `ld` loop.
    void ld_lanes(std::size_t first, std::size_t stride, std::size_t n,
                  double* dst) const noexcept {
        assert(n == 0 || first + (n - 1) * stride < n_);
        *rd_ += n * sizeof(T);
        for (std::size_t i = 0; i < n; ++i) {
            dst[i] = static_cast<double>(data_[first + i * stride]);
        }
    }

    void st(std::size_t i, const value_type& v) const noexcept
        requires(!std::is_const_v<T>)
    {
        assert(i < n_);
        *wr_ += sizeof(T);
        data_[i] = v;
    }

    /// One charged store window of `n` contiguous elements at `first`.
    [[nodiscard]] value_type* st_bulk(std::size_t first, std::size_t n) const noexcept
        requires(!std::is_const_v<T>)
    {
        assert(first + n <= n_);
        *wr_ += n * sizeof(T);
        return data_ + first;
    }

    /// Charge `n` element stores and return the span base (strided/tiled
    /// write loops; the caller must write exactly `n` elements).
    [[nodiscard]] value_type* st_footprint(std::size_t n) const noexcept
        requires(!std::is_const_v<T>)
    {
        assert(n <= n_);
        *wr_ += n * sizeof(T);
        return data_;
    }

    /// Charge `n` element stores without a range bound (see ld_charge).
    [[nodiscard]] value_type* st_charge(std::size_t n) const noexcept
        requires(!std::is_const_v<T>)
    {
        *wr_ += n * sizeof(T);
        return data_;
    }

    /// Strided scatter of `n` doubles narrowed to T (static_cast, identical
    /// to the per-element `st` idiom), charged as one `n`-element store.
    void st_lanes(std::size_t first, std::size_t stride, std::size_t n,
                  const double* src) const noexcept
        requires(!std::is_const_v<T>)
    {
        assert(n == 0 || first + (n - 1) * stride < n_);
        *wr_ += n * sizeof(T);
        for (std::size_t i = 0; i < n; ++i) {
            data_[first + i * stride] = static_cast<value_type>(src[i]);
        }
    }

    /// Read-modify-write accumulation, the modeled `atomicAdd`: charges one
    /// load and one store (exactly what the serial `st(i, ld(i) + v)` idiom
    /// charged) and is safe under the parallel block scheduler. Histogram
    /// counts are integer-valued doubles, so the sum is exact and the
    /// result is independent of block execution order.
    void atomic_add(std::size_t i, const value_type& v) const noexcept
        requires(!std::is_const_v<T>)
    {
        assert(i < n_);
        *rd_ += sizeof(T);
        *wr_ += sizeof(T);
        std::atomic_ref<value_type>(data_[i]).fetch_add(v, std::memory_order_relaxed);
    }

private:
    T* data_;
    std::size_t n_;
    std::uint64_t* rd_;
    std::uint64_t* wr_;
};

}  // namespace cuzc::vgpu
