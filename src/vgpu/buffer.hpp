#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "device.hpp"

namespace cuzc::vgpu {

/// RAII allocation in the modeled device's global memory. Host code moves
/// data in/out with `upload`/`download` (counted as PCIe transfers); kernel
/// code accesses elements through a `DeviceSpan` obtained from a `Launch`,
/// which counts every load/store against that launch's `KernelStats`.
template <class T>
class DeviceBuffer {
public:
    DeviceBuffer(Device& dev, std::size_t n) : dev_(&dev), mem_(n) {}

    DeviceBuffer(Device& dev, std::span<const T> host) : dev_(&dev), mem_(host.begin(), host.end()) {
        dev.note_h2d(host.size_bytes());
    }

    [[nodiscard]] std::size_t size() const noexcept { return mem_.size(); }
    [[nodiscard]] std::uint64_t size_bytes() const noexcept {
        return mem_.size() * sizeof(T);
    }

    void upload(std::span<const T> host) {
        assert(host.size() == mem_.size());
        std::copy(host.begin(), host.end(), mem_.begin());
        dev_->note_h2d(host.size_bytes());
    }

    void download(std::span<T> host) const {
        assert(host.size() == mem_.size());
        std::copy(mem_.begin(), mem_.end(), host.begin());
        dev_->note_d2h(host.size() * sizeof(T));
    }

    [[nodiscard]] std::vector<T> download() const {
        dev_->note_d2h(size_bytes());
        return mem_;
    }

    void fill(const T& v) { std::fill(mem_.begin(), mem_.end(), v); }

    /// Uncounted access for the host-side runtime itself (e.g. verification);
    /// kernel code must go through DeviceSpan instead.
    [[nodiscard]] T* raw() noexcept { return mem_.data(); }
    [[nodiscard]] const T* raw() const noexcept { return mem_.data(); }

private:
    Device* dev_;
    std::vector<T> mem_;
};

/// Kernel-side view of a DeviceBuffer; every `ld`/`st` is charged to the
/// owning launch's global-memory counters. Explicit ld/st (rather than
/// operator[]) keeps global-memory traffic visible in kernel code, mirroring
/// how CUDA kernels are tuned around memory transactions.
template <class T>
class DeviceSpan {
public:
    DeviceSpan(T* data, std::size_t n, std::uint64_t* rd, std::uint64_t* wr) noexcept
        : data_(data), n_(n), rd_(rd), wr_(wr) {}

    [[nodiscard]] std::size_t size() const noexcept { return n_; }

    [[nodiscard]] T ld(std::size_t i) const noexcept {
        assert(i < n_);
        *rd_ += sizeof(T);
        return data_[i];
    }

    void st(std::size_t i, const T& v) const noexcept {
        assert(i < n_);
        *wr_ += sizeof(T);
        data_[i] = v;
    }

private:
    T* data_;
    std::size_t n_;
    std::uint64_t* rd_;
    std::uint64_t* wr_;
};

}  // namespace cuzc::vgpu
