#include "cost_model.hpp"

#include <algorithm>

namespace cuzc::vgpu {

GpuTimeBreakdown GpuCostModel::kernel_time(const KernelStats& stats,
                                           double coalescing_override) const {
    const double coalescing = coalescing_override > 0 ? coalescing_override : stats.coalescing;
    GpuTimeBreakdown t;
    const OccupancyResult occ = occupancy(props_, stats);
    const std::uint64_t blocks_per_launch =
        stats.blocks / std::max<std::uint64_t>(stats.launches, 1);
    const std::uint64_t blocks_each =
        stats.blocks == 0 ? 0 : (blocks_per_launch + props_.num_sms - 1) / props_.num_sms;
    t.resident_blocks_per_sm = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(occ.max_blocks_per_sm, std::max<std::uint64_t>(blocks_each, 1)));
    // Small grids leave SMs idle, but not proportionally: the few resident
    // blocks get the whole memory system and L2, so the penalty saturates
    // (floor calibrated against the paper's pattern-2 Hurricane/Scale rows).
    t.sm_utilization = std::clamp(
        static_cast<double>(std::max<std::uint64_t>(blocks_per_launch, 1)) /
            static_cast<double>(props_.num_sms),
        0.35, 1.0);

    switch (t.resident_blocks_per_sm) {
        case 0:
        case 1: t.derate = params_.derate_1tb; break;
        case 2: t.derate = params_.derate_2tb; break;
        case 3: t.derate = params_.derate_3tb; break;
        default: t.derate = 1.0; break;
    }
    t.derate *= t.sm_utilization;

    t.launch_s = static_cast<double>(stats.launches) * params_.t_launch +
                 static_cast<double>(stats.grid_syncs) * params_.t_grid_sync;
    t.mem_s = static_cast<double>(stats.global_bytes()) /
              (params_.hbm_bw_bytes * std::clamp(coalescing, 0.01, 1.0) * t.derate);
    t.compute_s = (static_cast<double>(stats.lane_ops) / (params_.lane_throughput * t.derate) +
                   static_cast<double>(stats.shuffle_ops) /
                       (params_.shuffle_throughput * t.derate)) *
                  std::max(stats.serialization, 1.0);
    t.smem_s = static_cast<double>(stats.shared_bytes()) / (params_.smem_bw_bytes * t.derate);
    t.total_s = t.launch_s + std::max({t.mem_s, t.compute_s, t.smem_s});
    return t;
}

double CpuCostModel::time(const CpuWork& work, int threads) const {
    const int active = std::clamp(threads, 1, params_.cores);
    const double mem_s = static_cast<double>(work.bytes) / params_.mem_bw_bytes;
    const double compute_s =
        static_cast<double>(work.ops) /
        (static_cast<double>(active) * params_.clock_hz * params_.scalar_ipc);
    return std::max(mem_s, compute_s);
}

}  // namespace cuzc::vgpu
