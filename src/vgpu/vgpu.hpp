#pragma once

/// Umbrella header for the virtual GPU runtime — the CUDA-semantics
/// execution substrate this reproduction runs the paper's kernels on.
/// See DESIGN.md §1 for the substitution rationale.

#include "block.hpp"       // IWYU pragma: export
#include "buffer.hpp"      // IWYU pragma: export
#include "cost_model.hpp"  // IWYU pragma: export
#include "device.hpp"      // IWYU pragma: export
#include "dim3.hpp"        // IWYU pragma: export
#include "exec_pool.hpp"   // IWYU pragma: export
#include "fault.hpp"       // IWYU pragma: export
#include "launch.hpp"      // IWYU pragma: export
#include "occupancy.hpp"   // IWYU pragma: export
#include "profiler.hpp"    // IWYU pragma: export
#include "reduce.hpp"      // IWYU pragma: export
#include "scheduler.hpp"   // IWYU pragma: export
#include "simd.hpp"        // IWYU pragma: export
#include "warp.hpp"        // IWYU pragma: export
