#pragma once

#include <cstdint>

namespace cuzc::vgpu {

/// CUDA-style 3-component extent used for grid and block dimensions.
struct Dim3 {
    std::uint32_t x = 1;
    std::uint32_t y = 1;
    std::uint32_t z = 1;

    [[nodiscard]] constexpr std::uint64_t volume() const noexcept {
        return static_cast<std::uint64_t>(x) * y * z;
    }

    friend constexpr bool operator==(const Dim3&, const Dim3&) = default;
};

}  // namespace cuzc::vgpu
