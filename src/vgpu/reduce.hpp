#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "buffer.hpp"
#include "launch.hpp"

namespace cuzc::vgpu {

/// Elements per grid-stride round of `device_reduce` (one block-width run).
/// Chunk loaders may stage up to this many per-element values at once —
/// e.g. to compute a whole round with the SIMD lane engine before the
/// per-thread accumulation walks the staged values.
inline constexpr std::uint32_t kReduceChunk = 256;

/// CUB-style device-wide reduction: the generic, metric-agnostic primitive
/// the paper's moZC baseline builds on (one such reduction per metric).
/// Implemented like cub::DeviceReduce — a grid-stride partial-reduction
/// kernel followed by a single-block finish kernel — so each call costs two
/// kernel launches and one extra pass over the partials, exactly the
/// overheads the pattern-oriented design removes.
///
/// `make_loader(Launch&)` returns a *chunk loader*: a callable
/// `loader(base, count)` that charges the loads for the contiguous element
/// range [base, base+count) in bulk and returns a per-element callable
/// `T(std::size_t i)` valid for exactly that range (this is where a metric
/// computes, e.g., the squared error from two device arrays). The partial
/// kernel walks its grid-stride rounds chunk-major — each round of block b
/// touches one contiguous run — so loaders charge one bulk load per span
/// per round instead of one per element. `op` must be associative +
/// commutative.
template <class T, class Op, class MakeLoader>
[[nodiscard]] T device_reduce(Device& dev, const std::string& name, std::size_t n, T init, Op op,
                              MakeLoader make_loader) {
    constexpr std::uint32_t kThreads = kReduceChunk;
    const std::uint32_t grid = static_cast<std::uint32_t>(
        std::min<std::size_t>(1024, (n + kThreads - 1) / kThreads));

    DeviceBuffer<T> partials(dev, grid);

    launch(dev, LaunchConfig{name + "/partial", Dim3{grid, 1, 1}, Dim3{kThreads, 1, 1}},
           [&](Launch& l, BlockCtx& blk) {
               auto load = make_loader(l);
               auto dpart = l.span(partials);
               auto acc = blk.make_regs<T>(1, init);
               const std::uint64_t stride =
                   static_cast<std::uint64_t>(grid) * kThreads;
               for (std::uint64_t base = std::uint64_t{blk.block_idx().x} * kThreads; base < n;
                    base += stride) {
                   const auto count =
                       static_cast<std::uint32_t>(std::min<std::uint64_t>(kThreads, n - base));
                   auto at = load(static_cast<std::size_t>(base), std::size_t{count});
                   blk.for_each_thread([&](ThreadCtx& t) {
                       if (t.linear < count) {
                           acc(t) = op(acc(t), at(static_cast<std::size_t>(base) + t.linear));
                       }
                   });
                   blk.add_iters(count);
                   blk.add_ops(std::uint64_t{count} * 2);
               }
               blk.for_each_warp([&](WarpCtx& w) { w.reduce_shfl_down(acc, 0, op); });
               auto warp_out = blk.shared().alloc<T>(blk.num_warps());
               blk.for_each_thread([&](ThreadCtx& t) {
                   if (t.lane == 0) warp_out.st(t.warp, acc(t));
               });
               blk.for_each_thread([&](ThreadCtx& t) {
                   if (t.linear == 0) {
                       T r = init;
                       for (std::uint32_t wid = 0; wid < blk.num_warps(); ++wid) {
                           r = op(r, warp_out.ld(wid));
                       }
                       dpart.st(blk.block_idx().x, r);
                   }
               });
           });

    DeviceBuffer<T> result(dev, 1);
    launch(dev, LaunchConfig{name + "/final", Dim3{1, 1, 1}, Dim3{kThreads, 1, 1}},
           [&](Launch& l, BlockCtx& blk) {
               auto dpart = l.span(partials);
               auto dres = l.span(result);
               auto acc = blk.make_regs<T>(1, init);
               for (std::uint32_t base = 0; base < grid; base += kThreads) {
                   const std::uint32_t count = std::min(kThreads, grid - base);
                   const T* part = dpart.ld_bulk(base, count);
                   blk.for_each_thread([&](ThreadCtx& t) {
                       if (t.linear < count) {
                           acc(t) = op(acc(t), part[t.linear]);
                       }
                   });
                   blk.add_iters(count);
                   blk.add_ops(count);
               }
               blk.for_each_warp([&](WarpCtx& w) { w.reduce_shfl_down(acc, 0, op); });
               auto warp_out = blk.shared().alloc<T>(blk.num_warps());
               blk.for_each_thread([&](ThreadCtx& t) {
                   if (t.lane == 0) warp_out.st(t.warp, acc(t));
               });
               blk.for_each_thread([&](ThreadCtx& t) {
                   if (t.linear == 0) {
                       T r = init;
                       for (std::uint32_t wid = 0; wid < blk.num_warps(); ++wid) {
                           r = op(r, warp_out.ld(wid));
                       }
                       dres.st(0, r);
                   }
               });
           });

    return result.download()[0];
}

}  // namespace cuzc::vgpu
