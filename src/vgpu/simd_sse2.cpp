// SSE2 backend: 2×f64 lanes. SSE2 is part of the x86-64 baseline, so this
// translation unit needs no extra target flags and is always usable on x86.

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include "simd_kernels.hpp"

namespace cuzc::vgpu::simd::sse2 {

namespace {

struct VecF32 {
    using reg = __m128;
    static reg loadu_half(const float* p) noexcept {
        return _mm_castsi128_ps(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
    }
    static void storeu_half(float* p, reg v) noexcept {
        _mm_storel_epi64(reinterpret_cast<__m128i*>(p), _mm_castps_si128(v));
    }
};

struct VecI32 {
    using reg = __m128i;
    static void storeu(std::int32_t* p, reg v) noexcept {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
    }
};

struct VecF64 {
    static constexpr std::size_t W = 2;
    using reg = __m128d;
    using f32 = VecF32;
    using i32 = VecI32;
    static reg loadu(const double* p) noexcept { return _mm_loadu_pd(p); }
    static void storeu(double* p, reg v) noexcept { _mm_storeu_pd(p, v); }
    static reg bcast(double v) noexcept { return _mm_set1_pd(v); }
    static reg add(reg a, reg b) noexcept { return _mm_add_pd(a, b); }
    static reg sub(reg a, reg b) noexcept { return _mm_sub_pd(a, b); }
    static reg mul(reg a, reg b) noexcept { return _mm_mul_pd(a, b); }
    static reg div(reg a, reg b) noexcept { return _mm_div_pd(a, b); }
    static reg sqrt(reg a) noexcept { return _mm_sqrt_pd(a); }
    // MINPD/MAXPD are exactly the ternary a<b?a:b / a>b?a:b, NaN and ±0
    // handling included.
    static reg vmin(reg a, reg b) noexcept { return _mm_min_pd(a, b); }
    static reg vmax(reg a, reg b) noexcept { return _mm_max_pd(a, b); }
    static reg abs(reg a) noexcept { return _mm_andnot_pd(_mm_set1_pd(-0.0), a); }
    static reg sel_abs(reg a) noexcept {
        // x < 0 ? -x : x via compare+blend (preserves -0.0, keeps NaN as-is).
        const reg neg = _mm_sub_pd(_mm_setzero_pd(), a);
        const reg mask = _mm_cmplt_pd(a, _mm_setzero_pd());
        return _mm_or_pd(_mm_and_pd(mask, neg), _mm_andnot_pd(mask, a));
    }
    static reg cvt_f32(const float* p) noexcept { return _mm_cvtps_pd(VecF32::loadu_half(p)); }
    static void store_f32(float* p, reg v) noexcept { VecF32::storeu_half(p, _mm_cvtpd_ps(v)); }
};

}  // namespace

const Ops* table() noexcept {
    static const Ops t = detail::make_ops<VecF64>("sse2", Backend::kSse2);
    return &t;
}

}  // namespace cuzc::vgpu::simd::sse2

#endif  // x86-64
