#pragma once

#include <cstddef>
#include <functional>

namespace cuzc::vgpu {

/// Host-side thread pool that executes the independent blocks of a
/// non-cooperative launch in parallel. CUDA guarantees nothing about block
/// scheduling beyond independence, so any partition is semantically valid;
/// this one is chosen to be *deterministic*: the grid is split into
/// contiguous block ranges, one per worker, with a static partition that
/// depends only on (nblocks, workers). Combined with per-worker counter
/// shards (all merged fields are commutative sums/maxima) and kernels whose
/// cross-block global writes are disjoint or exact atomic adds, both the
/// numerical results and the profiler counts are bit-identical for every
/// worker count, including 1.
///
/// Worker count resolution: `set_num_threads` override, else the
/// CUZC_VGPU_THREADS environment variable, else hardware concurrency.
/// Workers are lazily spawned, persistent, and shared by all devices;
/// `run` calls are serialized. A `run` issued from inside a worker (nested
/// launch) degrades to inline serial execution.
class BlockScheduler {
public:
    static BlockScheduler& instance();

    /// RAII: while alive, launches issued from this thread execute their
    /// blocks inline (single worker, grid order) instead of entering the
    /// shared pool. Device-level parallelism (one host thread per virtual
    /// device, as in the parallel multi-GPU path) uses this so concurrent
    /// devices don't serialize on the pool — block results and profiler
    /// counts are bit-identical either way (see class comment). Scopes
    /// nest; each thread restores its previous state on destruction.
    class SerialScope {
    public:
        SerialScope();
        ~SerialScope();
        SerialScope(const SerialScope&) = delete;
        SerialScope& operator=(const SerialScope&) = delete;

    private:
        bool prev_;
    };

    /// Workers a launch of `nblocks` blocks will use (>= 1).
    [[nodiscard]] std::size_t plan_workers(std::size_t nblocks) const noexcept;

    [[nodiscard]] std::size_t max_workers() const noexcept;

    /// Override the worker count for subsequent launches (0 restores the
    /// environment/hardware default). Must not be called during a run.
    void set_num_threads(std::size_t n);

    using RangeFn = std::function<void(std::size_t worker, std::size_t begin, std::size_t end)>;

    /// Execute `fn(w, begin, end)` for the `workers` contiguous ranges of
    /// [0, nblocks). Worker 0's range runs on the calling thread. Returns
    /// after every range completes. `workers` must come from
    /// `plan_workers(nblocks)`.
    void run(std::size_t nblocks, std::size_t workers, const RangeFn& fn);

    BlockScheduler(const BlockScheduler&) = delete;
    BlockScheduler& operator=(const BlockScheduler&) = delete;

private:
    BlockScheduler();
    ~BlockScheduler();

    struct Impl;
    Impl* impl_;
};

}  // namespace cuzc::vgpu
