#include "occupancy.hpp"

#include <algorithm>

namespace cuzc::vgpu {

std::string_view to_string(OccupancyLimiter lim) noexcept {
    switch (lim) {
        case OccupancyLimiter::kRegisters: return "registers";
        case OccupancyLimiter::kSharedMemory: return "shared-memory";
        case OccupancyLimiter::kThreads: return "threads";
        case OccupancyLimiter::kBlocks: return "blocks";
    }
    return "?";
}

OccupancyResult occupancy(const DeviceProps& props, std::uint32_t threads_per_block,
                          std::uint32_t regs_per_thread, std::uint64_t smem_per_block) {
    OccupancyResult r;
    if (threads_per_block == 0) return r;

    const std::uint64_t regs_per_block =
        static_cast<std::uint64_t>(std::max(regs_per_thread, 1u)) * threads_per_block;
    const std::uint64_t by_regs = props.regs_per_sm / regs_per_block;
    const std::uint64_t by_smem =
        smem_per_block == 0 ? props.max_blocks_per_sm : props.smem_per_sm / smem_per_block;
    const std::uint64_t by_threads = props.max_threads_per_sm / threads_per_block;
    const std::uint64_t by_blocks = props.max_blocks_per_sm;

    // The block-count cap is the architectural default; a resource is the
    // limiter only when it is strictly tighter.
    std::uint64_t lim = by_blocks;
    r.limiter = OccupancyLimiter::kBlocks;
    if (by_regs < lim) {
        lim = by_regs;
        r.limiter = OccupancyLimiter::kRegisters;
    }
    if (by_smem < lim) {
        lim = by_smem;
        r.limiter = OccupancyLimiter::kSharedMemory;
    }
    if (by_threads < lim) {
        lim = by_threads;
        r.limiter = OccupancyLimiter::kThreads;
    }

    r.max_blocks_per_sm = static_cast<std::uint32_t>(lim);
    r.occupancy = static_cast<double>(lim * threads_per_block) /
                  static_cast<double>(props.max_threads_per_sm);
    r.occupancy = std::min(r.occupancy, 1.0);
    return r;
}

OccupancyResult occupancy(const DeviceProps& props, const KernelStats& stats) {
    return occupancy(props, stats.threads_per_block, stats.regs_per_thread,
                     stats.smem_per_block);
}

std::uint32_t blocks_per_sm(const DeviceProps& props, std::uint64_t grid_blocks) {
    return static_cast<std::uint32_t>((grid_blocks + props.num_sms - 1) / props.num_sms);
}

}  // namespace cuzc::vgpu
