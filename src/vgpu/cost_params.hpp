#pragma once

namespace cuzc::vgpu {

/// Calibration constants for the analytical GPU cost model. Values describe
/// the paper's evaluation platform (NVIDIA Tesla V100 SXM2, CUDA 11.2):
///   - hbm_bw_bytes: achievable HBM2 bandwidth (~87% of the 900 GB/s peak,
///     typical of STREAM-like kernels on Volta);
///   - lane_throughput: FP64 scalar-op rate (V100: half the FP32 cores) —
///     every assessment metric accumulates in double precision, so compute
///     is priced at the double-precision pipe;
///   - shuffle_throughput: warp shuffles issue on 4 sched units/SM at 1/clk;
///   - smem_bw_bytes: aggregate shared-memory bandwidth (128 B/clk/SM);
///   - t_launch / t_grid_sync: kernel-launch and cooperative grid-barrier
///     overheads measured in the 5 us / 2 us range on Volta;
///   - derate_*: latency-hiding derating when too few thread blocks are
///     resident per SM to cover memory latency (the effect the paper
///     observes for pattern 2 on Hurricane and Scale-LETKF).
struct GpuCostParams {
    double t_launch = 5.0e-6;
    double t_grid_sync = 2.0e-6;
    double hbm_bw_bytes = 780.0e9;
    double smem_bw_bytes = 14.0e12;
    double lane_throughput = 3.533e12;
    double shuffle_throughput = 0.442e12;
    double derate_1tb = 0.75;
    double derate_2tb = 0.90;
    double derate_3tb = 0.95;
};

/// Calibration constants for the CPU baseline (Intel Xeon Gold 6148,
/// 20 cores @ 2.4 GHz, ~100 GB/s sustained socket bandwidth). `scalar_ipc`
/// reflects that Z-checker's metric loops are scalar, branchy, unvectorized
/// C (the paper's ompZC is the original code with OpenMP pragmas).
struct CpuCostParams {
    int cores = 20;
    double clock_hz = 2.4e9;
    double scalar_ipc = 0.75;
    double mem_bw_bytes = 100.0e9;
};

}  // namespace cuzc::vgpu
