#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cuzc::vgpu {

/// Kernel-side view of a shared-memory allocation; loads/stores are charged
/// to the launch's shared-memory counters.
template <class T>
class SharedArray {
public:
    SharedArray(T* data, std::size_t n, std::uint64_t* rd, std::uint64_t* wr) noexcept
        : data_(data), n_(n), rd_(rd), wr_(wr) {}

    [[nodiscard]] std::size_t size() const noexcept { return n_; }

    [[nodiscard]] T ld(std::size_t i) const noexcept {
        assert(i < n_);
        *rd_ += sizeof(T);
        return data_[i];
    }

    void st(std::size_t i, const T& v) const noexcept {
        assert(i < n_);
        *wr_ += sizeof(T);
        data_[i] = v;
    }

private:
    T* data_;
    std::size_t n_;
    std::uint64_t* rd_;
    std::uint64_t* wr_;
};

/// Per-block shared memory modeled as a bump allocator over a fixed-size
/// byte arena. Peak allocation is tracked and reported as the block's
/// shared-memory footprint ("SMem/TB" in the paper's Table II). Exceeding
/// the device's per-block carve-out is a programming error (assert), exactly
/// as an oversized launch would fail on real hardware.
class SharedArena {
public:
    SharedArena(std::uint64_t capacity, std::uint64_t* rd, std::uint64_t* wr)
        : storage_(capacity), rd_(rd), wr_(wr) {}

    template <class T>
    [[nodiscard]] SharedArray<T> alloc(std::size_t n) {
        const std::size_t align = alignof(T);
        offset_ = (offset_ + align - 1) / align * align;
        const std::size_t bytes = n * sizeof(T);
        assert(offset_ + bytes <= storage_.size() &&
               "shared memory allocation exceeds per-block capacity");
        T* p = reinterpret_cast<T*>(storage_.data() + offset_);
        offset_ += bytes;
        peak_ = offset_ > peak_ ? offset_ : peak_;
        return SharedArray<T>(p, n, rd_, wr_);
    }

    [[nodiscard]] std::uint64_t peak_bytes() const noexcept { return peak_; }

    void reset() noexcept { offset_ = 0; }

private:
    std::vector<std::byte> storage_;
    std::size_t offset_ = 0;
    std::uint64_t peak_ = 0;
    std::uint64_t* rd_;
    std::uint64_t* wr_;
};

}  // namespace cuzc::vgpu
