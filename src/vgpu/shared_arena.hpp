#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cuzc::vgpu {

/// Kernel-side view of a shared-memory allocation; loads/stores are charged
/// to the launch's shared-memory counters. Hot loops over contiguous runs
/// should use `ld_bulk`/`st_bulk` (or the strided `*_footprint` forms),
/// which charge the whole run with one counter update — totals are
/// bit-identical to per-element ld/st of the same elements.
template <class T>
class SharedArray {
public:
    SharedArray(T* data, std::size_t n, std::uint64_t* rd, std::uint64_t* wr) noexcept
        : data_(data), n_(n), rd_(rd), wr_(wr) {}

    [[nodiscard]] std::size_t size() const noexcept { return n_; }

    [[nodiscard]] T ld(std::size_t i) const noexcept {
        assert(i < n_);
        *rd_ += sizeof(T);
        return data_[i];
    }

    void st(std::size_t i, const T& v) const noexcept {
        assert(i < n_);
        *wr_ += sizeof(T);
        data_[i] = v;
    }

    /// One charged load of `n` contiguous elements starting at `first`.
    [[nodiscard]] const T* ld_bulk(std::size_t first, std::size_t n) const noexcept {
        assert(first + n <= n_);
        *rd_ += n * sizeof(T);
        return data_ + first;
    }

    /// One charged store window of `n` contiguous elements at `first`.
    [[nodiscard]] T* st_bulk(std::size_t first, std::size_t n) const noexcept {
        assert(first + n <= n_);
        *wr_ += n * sizeof(T);
        return data_ + first;
    }

    /// Charge `n` element loads and return the array base for a strided loop
    /// that reads exactly `n` elements through the returned pointer.
    [[nodiscard]] const T* ld_footprint(std::size_t n) const noexcept {
        assert(n <= n_);
        *rd_ += n * sizeof(T);
        return data_;
    }

    /// Charge `n` element stores and return the array base (strided writes).
    [[nodiscard]] T* st_footprint(std::size_t n) const noexcept {
        assert(n <= n_);
        *wr_ += n * sizeof(T);
        return data_;
    }

    /// Charge `n` element loads without a range bound — for read-modify-write
    /// loops (histograms) whose charged count may exceed the array size.
    [[nodiscard]] const T* ld_charge(std::size_t n) const noexcept {
        *rd_ += n * sizeof(T);
        return data_;
    }

    /// Charge `n` element stores without a range bound (see ld_charge).
    [[nodiscard]] T* st_charge(std::size_t n) const noexcept {
        *wr_ += n * sizeof(T);
        return data_;
    }

private:
    T* data_;
    std::size_t n_;
    std::uint64_t* rd_;
    std::uint64_t* wr_;
};

/// Per-block shared memory modeled as a bump allocator over a fixed-size
/// byte arena. Peak allocation is tracked and reported as the block's
/// shared-memory footprint ("SMem/TB" in the paper's Table II). Exceeding
/// the device's per-block carve-out is a programming error (assert), exactly
/// as an oversized launch would fail on real hardware.
///
/// Arenas are pooled: the execution engine keeps one per worker (plus one
/// per resident block for cooperative launches) and recycles it with
/// `begin_block`, so steady-state launches perform no shared-memory
/// allocation at all. Like real shared memory, a recycled arena's contents
/// are unspecified — kernels must write before reading.
class SharedArena {
public:
    SharedArena(std::uint64_t capacity, std::uint64_t* rd, std::uint64_t* wr)
        : storage_(capacity), rd_(rd), wr_(wr) {}

    template <class T>
    [[nodiscard]] SharedArray<T> alloc(std::size_t n) {
        const std::size_t align = alignof(T);
        offset_ = (offset_ + align - 1) / align * align;
        const std::size_t bytes = n * sizeof(T);
        assert(offset_ + bytes <= storage_.size() &&
               "shared memory allocation exceeds per-block capacity");
        T* p = reinterpret_cast<T*>(storage_.data() + offset_);
        offset_ += bytes;
        peak_ = offset_ > peak_ ? offset_ : peak_;
        return SharedArray<T>(p, n, rd_, wr_);
    }

    [[nodiscard]] std::uint64_t peak_bytes() const noexcept { return peak_; }

    /// Recycle the arena for a new block of a (possibly different) launch:
    /// clears the bump offset AND the peak tracker, and rebinds the charge
    /// counters to the new launch's shard. Without the peak reset a pooled
    /// arena would leak one launch's footprint into the next launch's
    /// SMem/TB figure.
    void begin_block(std::uint64_t* rd, std::uint64_t* wr) noexcept {
        offset_ = 0;
        peak_ = 0;
        rd_ = rd;
        wr_ = wr;
    }

    /// Release all allocations but keep the peak (intra-block reuse).
    void reset() noexcept { offset_ = 0; }

private:
    std::vector<std::byte> storage_;
    std::size_t offset_ = 0;
    std::uint64_t peak_ = 0;
    std::uint64_t* rd_;
    std::uint64_t* wr_;
};

}  // namespace cuzc::vgpu
