// Scalar backend of the SIMD lane engine, and the reference definition of
// the vector trait contract every backend implements:
//
//   struct VecF64 {
//     static constexpr std::size_t W;   // f64 lanes per register
//     using reg;                        // register type
//     loadu/storeu, bcast,
//     add/sub/mul/div/sqrt,             // exactly-rounded lane arithmetic
//     vmin/vmax,                        // MINPD/MAXPD ternary: a<b?a:b / a>b?a:b
//     abs,                              // sign-bit clear (std::fabs)
//     sel_abs,                          // compare-select x<0?-x:x
//     cvt_f32,                          // load W floats, widen to f64 (exact)
//     store_f32,                        // narrow W f64 to floats (round-to-nearest)
//   };
//
// This translation unit is compiled with -fno-tree-vectorize so the scalar
// backend is an honest one-lane baseline for bench_simd_speedup rather than
// whatever the auto-vectorizer makes of it.

#include <cmath>

#include "simd_kernels.hpp"

namespace cuzc::vgpu::simd::scalar {

namespace {

struct VecF32 {
    using reg = float;
    static reg loadu(const float* p) noexcept { return *p; }
    static void storeu(float* p, reg v) noexcept { *p = v; }
};

struct VecI32 {
    using reg = std::int32_t;
    static reg loadu(const std::int32_t* p) noexcept { return *p; }
    static void storeu(std::int32_t* p, reg v) noexcept { *p = v; }
};

struct VecF64 {
    static constexpr std::size_t W = 1;
    using reg = double;
    using f32 = VecF32;
    using i32 = VecI32;
    static reg loadu(const double* p) noexcept { return *p; }
    static void storeu(double* p, reg v) noexcept { *p = v; }
    static reg bcast(double v) noexcept { return v; }
    static reg add(reg a, reg b) noexcept { return a + b; }
    static reg sub(reg a, reg b) noexcept { return a - b; }
    static reg mul(reg a, reg b) noexcept { return a * b; }
    static reg div(reg a, reg b) noexcept { return a / b; }
    static reg sqrt(reg a) noexcept { return std::sqrt(a); }
    static reg vmin(reg a, reg b) noexcept { return detail::s_min(a, b); }
    static reg vmax(reg a, reg b) noexcept { return detail::s_max(a, b); }
    static reg abs(reg a) noexcept { return std::fabs(a); }
    static reg sel_abs(reg a) noexcept { return detail::s_sel_abs(a); }
    static reg cvt_f32(const float* p) noexcept { return static_cast<double>(*p); }
    static void store_f32(float* p, reg v) noexcept { *p = static_cast<float>(v); }
};

}  // namespace

const Ops* table() noexcept {
    static const Ops t = detail::make_ops<VecF64>("scalar", Backend::kScalar);
    return &t;
}

}  // namespace cuzc::vgpu::simd::scalar
