#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <type_traits>
#include <vector>

#include "profiler.hpp"
#include "shared_arena.hpp"
#include "thread_ctx.hpp"
#include "warp.hpp"

namespace cuzc::vgpu {

/// Cached tid decomposition of one block shape. The (tid, warp, lane) of a
/// linear thread index depends only on the block dimensions — never on the
/// block index — so one table serves every block of a launch, replacing the
/// five divisions per thread per `for_each_thread` call with a table walk.
///
/// Two shapes are cached (most-recently-used first): a request that
/// alternates between two block dims — e.g. pattern2's {16,16,1} and
/// pattern3's {32,wy,1} launched back to back — flips between the entries
/// instead of rebuilding the table on every launch. Returned pointers stay
/// valid until the same entry is evicted by a third distinct shape.
class ThreadTable {
public:
    [[nodiscard]] const ThreadCtx* get(Dim3 block_dim) {
        if (!matches(e_[0], block_dim)) {
            if (matches(e_[1], block_dim)) {
                std::swap(e_[0], e_[1]);
            } else {
                std::swap(e_[0], e_[1]);  // evict the LRU entry, keep the MRU
                rebuild(e_[0], block_dim);
            }
        }
        return e_[0].ctx.data();
    }

private:
    struct Entry {
        Dim3 dim{0, 0, 0};
        std::vector<ThreadCtx> ctx;
    };

    [[nodiscard]] static bool matches(const Entry& e, Dim3 d) noexcept {
        return d.x == e.dim.x && d.y == e.dim.y && d.z == e.dim.z && !e.ctx.empty();
    }

    static void rebuild(Entry& e, Dim3 d) {
        e.dim = d;
        const std::uint32_t n = static_cast<std::uint32_t>(d.volume());
        e.ctx.resize(n);
        std::uint32_t i = 0;
        for (std::uint32_t z = 0; z < d.z; ++z)
            for (std::uint32_t y = 0; y < d.y; ++y)
                for (std::uint32_t x = 0; x < d.x; ++x, ++i) {
                    e.ctx[i] = ThreadCtx{Dim3{x, y, z}, i, i / kWarpSize, i % kWarpSize};
                }
    }

    Entry e_[2];
};

/// Chunked bump allocator backing the pooled software register file. One
/// slab per worker; `reset()` recycles it between blocks, so steady-state
/// execution allocates register storage zero times per block. Growing mid-
/// block appends a fresh chunk instead of reallocating, keeping every
/// pointer handed out earlier in the same block valid; reset coalesces the
/// chunks so the next block gets a single slab of the high-water size.
class RegSlab {
public:
    template <class T>
    [[nodiscard]] T* alloc(std::size_t n) {
        static_assert(std::is_trivially_destructible_v<T> && std::is_trivially_copyable_v<T>,
                      "slab-backed registers skip destructors");
        const std::size_t align = alignof(T);
        offset_ = (offset_ + align - 1) / align * align;
        const std::size_t bytes = n * sizeof(T);
        if (chunks_.empty() || offset_ + bytes > chunks_.back().size) grow(bytes);
        T* p = reinterpret_cast<T*>(chunks_.back().data.get() + offset_);
        offset_ += bytes;
        return p;
    }

    /// Recycle between blocks; invalidates all pointers from `alloc`.
    void reset() {
        if (chunks_.size() > 1) {
            const std::size_t total = cap_total_;
            chunks_.clear();
            cap_total_ = 0;
            grow(total);
        }
        offset_ = 0;
    }

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        std::size_t size;
    };

    void grow(std::size_t need) {
        const std::size_t sz = std::max({need, std::size_t{4096}, cap_total_});
        chunks_.push_back({std::make_unique<std::byte[]>(sz), sz});
        cap_total_ += sz;
        offset_ = 0;
    }

    std::vector<Chunk> chunks_;
    std::size_t offset_ = 0;
    std::size_t cap_total_ = 0;
};

/// Everything one scheduler worker needs to execute a contiguous range of
/// blocks: a private counter shard (merged into the launch record at launch
/// end), a recycled shared-memory arena, and a recycled register slab.
struct WorkerSlot {
    explicit WorkerSlot(std::uint64_t smem_capacity)
        : arena(smem_capacity, nullptr, nullptr) {}

    KernelStats shard;
    SharedArena arena;
    RegSlab regs;
    ThreadTable tids;
};

/// Per-device pool of execution resources, reused across launches. Worker
/// slots serve non-cooperative launches (one slot per scheduler worker);
/// cooperative launches additionally keep one arena per resident block so
/// shared memory persists across grid-sync phases. Deques keep references
/// stable while the pool grows. Not thread-safe: slots are created by the
/// launching thread before workers start, and each worker then touches only
/// its own slot.
class ExecutionPool {
public:
    explicit ExecutionPool(std::uint64_t smem_capacity) : smem_(smem_capacity) {}

    [[nodiscard]] WorkerSlot& slot(std::size_t w) {
        while (slots_.size() <= w) slots_.emplace_back(smem_);
        return slots_[w];
    }

    [[nodiscard]] SharedArena& coop_arena(std::size_t block) {
        while (coop_.size() <= block) coop_.emplace_back(smem_, nullptr, nullptr);
        return coop_[block];
    }

    [[nodiscard]] RegSlab& coop_regs() noexcept { return coop_regs_; }
    [[nodiscard]] ThreadTable& coop_tids() noexcept { return coop_tids_; }

private:
    std::uint64_t smem_;
    std::deque<WorkerSlot> slots_;
    std::deque<SharedArena> coop_;
    RegSlab coop_regs_;
    ThreadTable coop_tids_;
};

}  // namespace cuzc::vgpu
