#include "huffman.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

namespace cuzc::sz {

namespace {

constexpr unsigned kMaxCodeLen = 57;  // fits a single BitWriter::put

/// Compute Huffman code lengths from frequencies with the classic two-queue
/// O(n log n) construction.
std::vector<std::uint8_t> code_lengths(std::span<const std::uint64_t> freq) {
    struct Node {
        std::uint64_t f;
        int left = -1, right = -1;
        std::uint32_t symbol = 0;
        bool leaf = false;
    };
    std::vector<Node> nodes;
    using QE = std::pair<std::uint64_t, int>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> heap;

    for (std::uint32_t s = 0; s < freq.size(); ++s) {
        if (freq[s] > 0) {
            nodes.push_back(Node{freq[s], -1, -1, s, true});
            heap.emplace(freq[s], static_cast<int>(nodes.size()) - 1);
        }
    }
    std::vector<std::uint8_t> lengths(freq.size(), 0);
    if (nodes.empty()) return lengths;
    if (nodes.size() == 1) {
        lengths[nodes[0].symbol] = 1;
        return lengths;
    }
    while (heap.size() > 1) {
        auto [fa, a] = heap.top();
        heap.pop();
        auto [fb, b] = heap.top();
        heap.pop();
        nodes.push_back(Node{fa + fb, a, b, 0, false});
        heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
    }
    // Depth-first assignment of depths to leaves.
    std::vector<std::pair<int, std::uint8_t>> stack{{heap.top().second, 0}};
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        const Node& node = nodes[static_cast<std::size_t>(idx)];
        if (node.leaf) {
            lengths[node.symbol] = depth == 0 ? 1 : depth;
        } else {
            stack.emplace_back(node.left, static_cast<std::uint8_t>(depth + 1));
            stack.emplace_back(node.right, static_cast<std::uint8_t>(depth + 1));
        }
    }
    return lengths;
}

}  // namespace

HuffmanCodec HuffmanCodec::from_frequencies(std::span<const std::uint64_t> freq) {
    // Rarely, extremely skewed distributions give codes deeper than the
    // bit-I/O limit; flattening frequencies (freq >> k, floored at 1 for
    // present symbols) shallows the tree at negligible ratio cost.
    std::vector<std::uint64_t> f(freq.begin(), freq.end());
    for (int attempt = 0; attempt < 8; ++attempt) {
        auto lengths = code_lengths(f);
        const auto max_len =
            *std::max_element(lengths.begin(), lengths.end());
        if (max_len <= kMaxCodeLen) return from_lengths(std::move(lengths));
        for (std::size_t s = 0; s < f.size(); ++s) {
            if (freq[s] > 0) f[s] = std::max<std::uint64_t>(1, f[s] >> 8);
        }
    }
    assert(false && "huffman code length limit not reachable");
    return from_lengths(code_lengths(f));
}

HuffmanCodec HuffmanCodec::from_lengths(std::vector<std::uint8_t> lengths) {
    HuffmanCodec c;
    c.lengths_ = std::move(lengths);
    c.build_canonical();
    return c;
}

void HuffmanCodec::build_canonical() {
    max_len_ = 0;
    for (const auto len : lengths_) max_len_ = std::max<unsigned>(max_len_, len);
    count_.assign(max_len_ + 1, 0);
    for (const auto len : lengths_) {
        if (len > 0) ++count_[len];
    }

    sorted_symbols_.clear();
    for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
        if (lengths_[s] > 0) sorted_symbols_.push_back(s);
    }
    std::sort(sorted_symbols_.begin(), sorted_symbols_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return lengths_[a] != lengths_[b] ? lengths_[a] < lengths_[b] : a < b;
              });

    first_code_.assign(max_len_ + 1, 0);
    first_index_.assign(max_len_ + 1, 0);
    std::uint64_t code = 0;
    std::uint32_t index = 0;
    for (unsigned len = 1; len <= max_len_; ++len) {
        code = (code + (len > 1 ? count_[len - 1] : 0)) << 1;
        first_code_[len] = code;
        first_index_[len] = index;
        index += count_[len];
    }

    codes_.assign(lengths_.size(), 0);
    std::vector<std::uint64_t> next = first_code_;
    for (const auto s : sorted_symbols_) {
        codes_[s] = next[lengths_[s]]++;
    }
}

void HuffmanCodec::encode(std::span<const std::uint32_t> symbols, BitWriter& out) const {
    for (const auto s : symbols) {
        assert(s < lengths_.size() && lengths_[s] > 0 && "symbol without a code");
        out.put(codes_[s], lengths_[s]);
    }
}

std::vector<std::uint32_t> HuffmanCodec::decode(BitReader& in, std::size_t count) const {
    std::vector<std::uint32_t> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t code = 0;
        unsigned len = 0;
        for (;;) {
            code = (code << 1) | (in.get_bit() ? 1u : 0u);
            ++len;
            assert(len <= max_len_ && "corrupt huffman stream");
            if (count_[len] > 0 && code >= first_code_[len] &&
                code - first_code_[len] < count_[len]) {
                out.push_back(
                    sorted_symbols_[first_index_[len] + (code - first_code_[len])]);
                break;
            }
        }
    }
    return out;
}

std::uint64_t HuffmanCodec::encoded_bits(std::span<const std::uint64_t> freq) const {
    std::uint64_t bits = 0;
    const std::size_t n = std::min(freq.size(), lengths_.size());
    for (std::size_t s = 0; s < n; ++s) bits += freq[s] * lengths_[s];
    return bits;
}

}  // namespace cuzc::sz
