#include "sz_compressor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "bitstream.hpp"
#include "huffman.hpp"
#include "lorenzo.hpp"
#include "quantizer.hpp"

namespace cuzc::sz {

namespace {

constexpr std::uint32_t kMagic = 0x435a5343;  // "CSZC"

double effective_bound(const zc::Tensor3f& input, const SzConfig& cfg) {
    if (!cfg.use_rel_bound) return cfg.abs_error_bound;
    float lo = input[0], hi = input[0];
    for (std::size_t i = 0; i < input.size(); ++i) {
        lo = std::min(lo, input[i]);
        hi = std::max(hi, input[i]);
    }
    const double range = static_cast<double>(hi) - lo;
    return range > 0 ? cfg.rel_error_bound * range : cfg.rel_error_bound;
}

}  // namespace

SzCompressed compress(const zc::Tensor3f& input, const SzConfig& cfg) {
    if (input.size() == 0) throw std::invalid_argument("sz::compress: empty input");
    if (cfg.quant_codes < 16) throw std::invalid_argument("sz::compress: quant_codes too small");

    SzCompressed out;
    out.dims = input.dims();
    out.effective_error_bound = effective_bound(input, cfg);
    if (!(out.effective_error_bound > 0)) {
        throw std::invalid_argument("sz::compress: error bound must be positive");
    }

    const zc::Dims3 d = input.dims();
    const std::size_t n = d.volume();
    const LinearQuantizer quant(out.effective_error_bound, cfg.quant_codes);

    std::vector<std::uint32_t> codes(n);
    std::vector<float> unpred;
    std::vector<double> recon(n, 0.0);

    std::size_t i = 0;
    for (std::size_t x = 0; x < d.h; ++x) {
        for (std::size_t y = 0; y < d.w; ++y) {
            for (std::size_t z = 0; z < d.l; ++z, ++i) {
                const double pred = lorenzo_predict(recon, d, x, y, z);
                double r;
                const std::uint32_t code = quant.quantize(input[i], pred, r);
                // Reconstructed values are rounded to float immediately so
                // the compressor's predictor chain sees exactly what the
                // decompressor will reproduce.
                const float rf = static_cast<float>(r);
                if (code != 0 && std::fabs(static_cast<double>(rf) - input[i]) >
                                     out.effective_error_bound) {
                    codes[i] = 0;
                    unpred.push_back(input[i]);
                    recon[i] = input[i];
                } else {
                    codes[i] = code;
                    if (code == 0) unpred.push_back(input[i]);
                    recon[i] = rf;
                }
            }
        }
    }
    out.unpredictable_count = unpred.size();

    std::vector<std::uint64_t> freq(cfg.quant_codes, 0);
    for (const auto c : codes) ++freq[c];
    const HuffmanCodec codec = HuffmanCodec::from_frequencies(freq);

    BitWriter bits;
    codec.encode(codes, bits);
    const std::vector<std::uint8_t> stream = bits.finish();

    ByteWriter w;
    w.put(kMagic);
    w.put<std::uint64_t>(d.h);
    w.put<std::uint64_t>(d.w);
    w.put<std::uint64_t>(d.l);
    w.put(out.effective_error_bound);
    w.put(cfg.quant_codes);
    // Sparse code-length table.
    std::uint32_t present = 0;
    for (const auto len : codec.lengths()) present += len > 0 ? 1 : 0;
    w.put(present);
    for (std::uint32_t s = 0; s < codec.lengths().size(); ++s) {
        if (codec.lengths()[s] > 0) {
            w.put(s);
            w.put(codec.lengths()[s]);
        }
    }
    w.put<std::uint64_t>(unpred.size());
    w.put_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(unpred.data()), unpred.size() * sizeof(float)));
    w.put<std::uint64_t>(stream.size());
    w.put_bytes(stream);
    out.bytes = w.finish();
    return out;
}

zc::Field decompress(std::span<const std::uint8_t> bytes) {
    ByteReader r(bytes);
    if (r.get<std::uint32_t>() != kMagic) {
        throw std::invalid_argument("sz::decompress: bad magic");
    }
    zc::Dims3 d;
    d.h = r.get<std::uint64_t>();
    d.w = r.get<std::uint64_t>();
    d.l = r.get<std::uint64_t>();
    const double eb = r.get<double>();
    const std::uint32_t num_codes = r.get<std::uint32_t>();
    const std::uint32_t present = r.get<std::uint32_t>();
    std::vector<std::uint8_t> lengths(num_codes, 0);
    for (std::uint32_t i = 0; i < present; ++i) {
        const std::uint32_t s = r.get<std::uint32_t>();
        const std::uint8_t len = r.get<std::uint8_t>();
        if (s >= num_codes) throw std::invalid_argument("sz::decompress: bad symbol");
        lengths[s] = len;
    }
    const std::uint64_t n_unpred = r.get<std::uint64_t>();
    const auto unpred_bytes = r.get_bytes(n_unpred * sizeof(float));
    std::vector<float> unpred(n_unpred);
    if (!unpred_bytes.empty()) {
        std::memcpy(unpred.data(), unpred_bytes.data(), unpred_bytes.size());
    }
    const std::uint64_t stream_size = r.get<std::uint64_t>();
    const auto stream = r.get_bytes(stream_size);

    const HuffmanCodec codec = HuffmanCodec::from_lengths(std::move(lengths));
    BitReader bits(stream);
    const std::size_t n = d.volume();
    const std::vector<std::uint32_t> codes = codec.decode(bits, n);

    const LinearQuantizer quant(eb, num_codes);
    zc::Field field(d);
    std::vector<double> recon(n, 0.0);
    std::size_t i = 0, u = 0;
    for (std::size_t x = 0; x < d.h; ++x) {
        for (std::size_t y = 0; y < d.w; ++y) {
            for (std::size_t z = 0; z < d.l; ++z, ++i) {
                float value;
                if (codes[i] == 0) {
                    if (u >= unpred.size()) {
                        throw std::invalid_argument("sz::decompress: truncated unpredictables");
                    }
                    value = unpred[u++];
                    recon[i] = value;
                } else {
                    const double pred = lorenzo_predict(recon, d, x, y, z);
                    value = static_cast<float>(quant.reconstruct(codes[i], pred));
                    recon[i] = value;
                }
                field.data()[i] = value;
            }
        }
    }
    return field;
}

}  // namespace cuzc::sz
