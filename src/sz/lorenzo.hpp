#pragma once

#include <cstddef>
#include <span>

#include "zc/tensor.hpp"

namespace cuzc::sz {

/// The 3-D Lorenzo predictor of SZ 1.4 (Tao et al., IPDPS'17): each point
/// is predicted from its already-reconstructed causal neighbours,
///   pred = f(x-1) + f(y-1) + f(z-1)
///        - f(x-1,y-1) - f(x-1,z-1) - f(y-1,z-1) + f(x-1,y-1,z-1),
/// with out-of-domain neighbours treated as 0. Degenerates to the 1-D/2-D
/// Lorenzo predictors when leading extents are 1.
///
/// `recon` must hold the reconstructed values of all causally preceding
/// points (scan order: x outer, then y, then z).
[[nodiscard]] inline double lorenzo_predict(std::span<const double> recon,
                                            const zc::Dims3& d, std::size_t x, std::size_t y,
                                            std::size_t z) noexcept {
    const auto at = [&](std::size_t xx, std::size_t yy, std::size_t zz) -> double {
        return recon[d.index(xx, yy, zz)];
    };
    const bool px = x > 0, py = y > 0, pz = z > 0;
    double pred = 0.0;
    if (px) pred += at(x - 1, y, z);
    if (py) pred += at(x, y - 1, z);
    if (pz) pred += at(x, y, z - 1);
    if (px && py) pred -= at(x - 1, y - 1, z);
    if (px && pz) pred -= at(x - 1, y, z - 1);
    if (py && pz) pred -= at(x, y - 1, z - 1);
    if (px && py && pz) pred += at(x - 1, y - 1, z - 1);
    return pred;
}

}  // namespace cuzc::sz
