#pragma once

#include <cmath>
#include <cstdint>

namespace cuzc::sz {

/// SZ's error-bounded linear-scaling quantizer. Prediction residuals are
/// mapped to integer codes of width 2*eb: code = round(residual / (2*eb))
/// offset by half the code range; residuals too large for the range become
/// "unpredictable" (code 0) and the exact value is stored verbatim.
/// Reconstruction is pred + 2*eb*(code - radius), which guarantees
/// |reconstructed - value| <= eb for every predictable point.
class LinearQuantizer {
public:
    LinearQuantizer(double error_bound, std::uint32_t num_codes) noexcept
        : eb_(error_bound), radius_(num_codes / 2), num_codes_(num_codes) {}

    [[nodiscard]] double error_bound() const noexcept { return eb_; }
    [[nodiscard]] std::uint32_t radius() const noexcept { return radius_; }
    [[nodiscard]] std::uint32_t num_codes() const noexcept { return num_codes_; }

    /// Quantize `value` against `pred`. Returns the code (0 means
    /// unpredictable) and leaves the reconstructed value in `recon` so the
    /// predictor chain can continue from what the decompressor will see.
    [[nodiscard]] std::uint32_t quantize(double value, double pred, double& recon) const noexcept {
        const double diff = value - pred;
        const double scaled = diff / (2.0 * eb_);
        if (std::fabs(scaled) < static_cast<double>(radius_) - 1.0) {
            const auto q = static_cast<std::int64_t>(std::llround(scaled));
            recon = pred + 2.0 * eb_ * static_cast<double>(q);
            // Guard against float rounding pushing past the bound.
            if (std::fabs(recon - value) <= eb_) {
                return static_cast<std::uint32_t>(q + static_cast<std::int64_t>(radius_));
            }
        }
        recon = value;
        return 0;  // unpredictable
    }

    /// Reconstruct from a non-zero code.
    [[nodiscard]] double reconstruct(std::uint32_t code, double pred) const noexcept {
        const auto q = static_cast<std::int64_t>(code) - static_cast<std::int64_t>(radius_);
        return pred + 2.0 * eb_ * static_cast<double>(q);
    }

private:
    double eb_;
    std::uint32_t radius_;
    std::uint32_t num_codes_;
};

}  // namespace cuzc::sz
