#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitstream.hpp"

namespace cuzc::sz {

/// Canonical Huffman codec over a dense symbol alphabet, the entropy stage
/// of the SZ-style compressor (SZ encodes its quantization codes exactly
/// this way). Codes are canonical so the table serializes as one code
/// length per present symbol.
class HuffmanCodec {
public:
    /// Build from symbol frequencies (index = symbol). Symbols with zero
    /// frequency receive no code. At least one symbol must be present.
    static HuffmanCodec from_frequencies(std::span<const std::uint64_t> freq);

    /// Rebuild from serialized code lengths.
    static HuffmanCodec from_lengths(std::vector<std::uint8_t> lengths);

    void encode(std::span<const std::uint32_t> symbols, BitWriter& out) const;
    [[nodiscard]] std::vector<std::uint32_t> decode(BitReader& in, std::size_t count) const;

    [[nodiscard]] const std::vector<std::uint8_t>& lengths() const noexcept { return lengths_; }
    [[nodiscard]] std::size_t alphabet_size() const noexcept { return lengths_.size(); }

    /// Expected encoded size in bits for the given frequencies (used by the
    /// compression-ratio estimator and tested against actual output).
    [[nodiscard]] std::uint64_t encoded_bits(std::span<const std::uint64_t> freq) const;

private:
    HuffmanCodec() = default;
    void build_canonical();

    std::vector<std::uint8_t> lengths_;   // per-symbol code length, 0 = absent
    std::vector<std::uint64_t> codes_;    // per-symbol canonical code (MSB-first)
    // Canonical decode tables indexed by code length 1..max_len_.
    std::vector<std::uint64_t> first_code_;    // first canonical code of each length
    std::vector<std::uint32_t> first_index_;   // index into sorted_symbols_ for each length
    std::vector<std::uint32_t> count_;         // number of codes of each length
    std::vector<std::uint32_t> sorted_symbols_;
    unsigned max_len_ = 0;
};

}  // namespace cuzc::sz
