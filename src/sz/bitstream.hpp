#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace cuzc::sz {

/// MSB-first bit writer backing the Huffman-coded stream.
class BitWriter {
public:
    void put(std::uint64_t bits, unsigned count) {
        assert(count <= 57 && "single put limited to 57 bits");
        acc_ = (acc_ << count) | (bits & ((count == 64 ? ~0ull : (1ull << count) - 1)));
        filled_ += count;
        while (filled_ >= 8) {
            filled_ -= 8;
            out_.push_back(static_cast<std::uint8_t>(acc_ >> filled_));
        }
    }

    /// Flush the trailing partial byte (zero-padded) and return the stream.
    [[nodiscard]] std::vector<std::uint8_t> finish() {
        if (filled_ > 0) {
            out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - filled_)));
            filled_ = 0;
        }
        return std::move(out_);
    }

    [[nodiscard]] std::size_t bit_count() const noexcept { return out_.size() * 8 + filled_; }

private:
    std::vector<std::uint8_t> out_;
    std::uint64_t acc_ = 0;
    unsigned filled_ = 0;
};

/// MSB-first bit reader.
class BitReader {
public:
    explicit BitReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

    [[nodiscard]] std::uint64_t get(unsigned count) {
        assert(count <= 57);
        while (filled_ < count) {
            const std::uint8_t byte = pos_ < data_.size() ? data_[pos_++] : 0;
            acc_ = (acc_ << 8) | byte;
            filled_ += 8;
        }
        filled_ -= count;
        const std::uint64_t v = (acc_ >> filled_) & (count == 64 ? ~0ull : (1ull << count) - 1);
        return v;
    }

    [[nodiscard]] bool get_bit() { return get(1) != 0; }

    [[nodiscard]] std::size_t bits_consumed() const noexcept { return pos_ * 8 - filled_; }

private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    std::uint64_t acc_ = 0;
    unsigned filled_ = 0;
};

/// Little-endian plain-old-data serialization helpers for stream headers.
class ByteWriter {
public:
    template <class T>
    void put(const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
        out_.insert(out_.end(), p, p + sizeof(T));
    }
    void put_bytes(std::span<const std::uint8_t> bytes) {
        out_.insert(out_.end(), bytes.begin(), bytes.end());
    }
    [[nodiscard]] std::vector<std::uint8_t> finish() { return std::move(out_); }
    [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

private:
    std::vector<std::uint8_t> out_;
};

class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

    template <class T>
    [[nodiscard]] T get() {
        static_assert(std::is_trivially_copyable_v<T>);
        assert(pos_ + sizeof(T) <= data_.size());
        T v;
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }
    [[nodiscard]] std::span<const std::uint8_t> get_bytes(std::size_t n) {
        assert(pos_ + n <= data_.size());
        auto s = data_.subspan(pos_, n);
        pos_ += n;
        return s;
    }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

}  // namespace cuzc::sz
