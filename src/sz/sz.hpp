#pragma once

/// Umbrella header for the SZ-style error-bounded lossy compressor
/// substrate (see DESIGN.md §1: stands in for cuSZ as the producer of
/// decompressed data to assess).

#include "bitstream.hpp"      // IWYU pragma: export
#include "huffman.hpp"        // IWYU pragma: export
#include "lorenzo.hpp"        // IWYU pragma: export
#include "quantizer.hpp"      // IWYU pragma: export
#include "sz_compressor.hpp"  // IWYU pragma: export
