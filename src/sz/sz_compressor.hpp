#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "zc/tensor.hpp"

namespace cuzc::sz {

/// Compression configuration. `abs_error_bound` is the pointwise absolute
/// bound; when `use_rel_bound` is set the effective absolute bound is
/// rel_error_bound * (value range of the input), SZ's "REL" mode.
struct SzConfig {
    double abs_error_bound = 1e-3;
    bool use_rel_bound = false;
    double rel_error_bound = 1e-3;
    std::uint32_t quant_codes = 65536;
};

/// A compressed field plus the compression statistics Z-checker reports
/// (compression ratio; throughputs are measured by the caller).
struct SzCompressed {
    std::vector<std::uint8_t> bytes;
    zc::Dims3 dims;
    double effective_error_bound = 0;
    std::size_t unpredictable_count = 0;

    [[nodiscard]] double compression_ratio() const noexcept {
        const double raw = static_cast<double>(dims.volume()) * sizeof(float);
        return bytes.empty() ? 0.0 : raw / static_cast<double>(bytes.size());
    }
};

/// Error-bounded lossy compression in the style of SZ 1.4 (the algorithm
/// cuSZ implements): Lorenzo prediction -> linear-scaling quantization ->
/// canonical Huffman coding, with verbatim storage of unpredictable values.
/// Guarantees |decompress(compress(x))_i - x_i| <= effective bound for all i.
[[nodiscard]] SzCompressed compress(const zc::Tensor3f& input, const SzConfig& cfg);

/// Inverse of `compress`.
[[nodiscard]] zc::Field decompress(std::span<const std::uint8_t> bytes);

}  // namespace cuzc::sz
