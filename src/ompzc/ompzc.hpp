#pragma once

#include "zc/field_buffer.hpp"
#include "zc/metrics_config.hpp"
#include "zc/report.hpp"
#include "zc/tensor.hpp"

namespace cuzc::ompzc {

/// ompZC — the paper's CPU baseline: Z-checker's metric-oriented analysis
/// kernels parallelized with OpenMP. Every metric remains a separate pass
/// over the data (the design property the paper's pattern-oriented GPU
/// approach removes); only the loops are multithreaded.
///
/// `threads <= 0` uses the OpenMP default.
[[nodiscard]] zc::AssessmentReport assess(const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                                          const zc::MetricsConfig& cfg, int threads = 0);

/// Data-plane entry point: assess ref-counted field views directly.
[[nodiscard]] inline zc::AssessmentReport assess(const zc::FieldRef& orig,
                                                 const zc::FieldRef& dec,
                                                 const zc::MetricsConfig& cfg, int threads = 0) {
    return assess(orig.view(), dec.view(), cfg, threads);
}

/// Individual pattern entry points for the per-pattern benchmarks
/// (Figs. 11-12 run one pattern at a time).
[[nodiscard]] zc::ReductionReport reduction_metrics(const zc::Tensor3f& orig,
                                                    const zc::Tensor3f& dec,
                                                    const zc::MetricsConfig& cfg,
                                                    int threads = 0);
[[nodiscard]] zc::StencilReport stencil_metrics(const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                                                const zc::MetricsConfig& cfg, int threads = 0);
[[nodiscard]] zc::SsimReport ssim(const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                                  const zc::MetricsConfig& cfg, int threads = 0);

}  // namespace cuzc::ompzc
