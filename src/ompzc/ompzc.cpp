#include "ompzc.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "zc/autocorr.hpp"
#include "zc/derivatives.hpp"
#include "zc/reduction_metrics.hpp"
#include "zc/ssim.hpp"

namespace cuzc::ompzc {

namespace {

[[nodiscard]] int resolve_threads(int threads) {
    return threads > 0 ? threads : omp_get_max_threads();
}

}  // namespace

zc::ReductionReport reduction_metrics(const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                                      const zc::MetricsConfig& cfg, int threads) {
    zc::ReductionReport out;
    const auto n = static_cast<std::int64_t>(orig.size());
    if (n == 0 || dec.size() != orig.size()) return out;
    const int nt = resolve_threads(threads);

    zc::ReductionMoments m;
    m.n = orig.size();

    // Metric-oriented execution: each metric family is its own full pass
    // over the arrays, parallelized with OpenMP — faithful to how the
    // paper's ompZC baseline runs Z-checker's per-metric kernels.
    double min_err = dec[0] - orig[0], max_err = min_err;
#pragma omp parallel for num_threads(nt) reduction(min : min_err) reduction(max : max_err)
    for (std::int64_t i = 0; i < n; ++i) {
        const double e = static_cast<double>(dec[i]) - orig[i];
        min_err = std::min(min_err, e);
        max_err = std::max(max_err, e);
    }
    m.min_err = min_err;
    m.max_err = max_err;

    double sum_err = 0, sum_abs = 0;
#pragma omp parallel for num_threads(nt) reduction(+ : sum_err, sum_abs)
    for (std::int64_t i = 0; i < n; ++i) {
        const double e = static_cast<double>(dec[i]) - orig[i];
        sum_err += e;
        sum_abs += std::fabs(e);
    }
    m.sum_err = sum_err;
    m.sum_abs_err = sum_abs;

    double sum_sq = 0;
#pragma omp parallel for num_threads(nt) reduction(+ : sum_sq)
    for (std::int64_t i = 0; i < n; ++i) {
        const double e = static_cast<double>(dec[i]) - orig[i];
        sum_sq += e * e;
    }
    m.sum_err_sq = sum_sq;

    double min_pwr = zc::pwr_error(orig[0], dec[0], cfg.pwr_eps), max_pwr = min_pwr,
           sum_pwr = 0;
#pragma omp parallel for num_threads(nt) reduction(min : min_pwr) reduction(max : max_pwr) \
    reduction(+ : sum_pwr)
    for (std::int64_t i = 0; i < n; ++i) {
        const double p = zc::pwr_error(orig[i], dec[i], cfg.pwr_eps);
        min_pwr = std::min(min_pwr, p);
        max_pwr = std::max(max_pwr, p);
        sum_pwr += std::fabs(p);
    }
    m.min_pwr = min_pwr;
    m.max_pwr = max_pwr;
    m.sum_pwr_abs = sum_pwr;

    double min_val = orig[0], max_val = orig[0], sum_val = 0, sum_val_sq = 0;
#pragma omp parallel for num_threads(nt) reduction(min : min_val) reduction(max : max_val) \
    reduction(+ : sum_val, sum_val_sq)
    for (std::int64_t i = 0; i < n; ++i) {
        const double x = orig[i];
        min_val = std::min(min_val, x);
        max_val = std::max(max_val, x);
        sum_val += x;
        sum_val_sq += x * x;
    }
    m.min_val = min_val;
    m.max_val = max_val;
    m.sum_val = sum_val;
    m.sum_val_sq = sum_val_sq;

    double sum_dec = 0, sum_dec_sq = 0, sum_cross = 0;
#pragma omp parallel for num_threads(nt) reduction(+ : sum_dec, sum_dec_sq, sum_cross)
    for (std::int64_t i = 0; i < n; ++i) {
        const double x = orig[i];
        const double y = dec[i];
        sum_dec += y;
        sum_dec_sq += y * y;
        sum_cross += x * y;
    }
    m.sum_dec = sum_dec;
    m.sum_dec_sq = sum_dec_sq;
    m.sum_cross = sum_cross;

    zc::finalize_reduction(m, out);

    const int bins = std::max(1, cfg.pdf_bins);
    out.err_pdf.assign(bins, 0.0);
    out.err_pdf_min = m.min_err;
    out.err_pdf_max = m.max_err;
    out.pwr_err_pdf.assign(bins, 0.0);
    out.pwr_err_pdf_min = m.min_pwr;
    out.pwr_err_pdf_max = m.max_pwr;
    std::vector<double> val_hist(bins, 0.0);

#pragma omp parallel num_threads(nt)
    {
        std::vector<double> le(bins, 0.0), lp(bins, 0.0), lv(bins, 0.0);
#pragma omp for nowait
        for (std::int64_t i = 0; i < n; ++i) {
            const double x = orig[i];
            const double e = static_cast<double>(dec[i]) - x;
            const double p = zc::pwr_error(x, dec[i], cfg.pwr_eps);
            le[zc::pdf_bin(e, m.min_err, m.max_err, bins)] += 1.0;
            lp[zc::pdf_bin(p, m.min_pwr, m.max_pwr, bins)] += 1.0;
            lv[zc::pdf_bin(x, m.min_val, m.max_val, bins)] += 1.0;
        }
#pragma omp critical
        for (int b = 0; b < bins; ++b) {
            out.err_pdf[b] += le[b];
            out.pwr_err_pdf[b] += lp[b];
            val_hist[b] += lv[b];
        }
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    double entropy = 0.0;
    for (int b = 0; b < bins; ++b) {
        out.err_pdf[b] *= inv_n;
        out.pwr_err_pdf[b] *= inv_n;
        const double pv = val_hist[b] * inv_n;
        if (pv > 0) entropy -= pv * std::log2(pv);
    }
    out.entropy = entropy;
    return out;
}

namespace {

template <int kOrder>
void omp_stencil_order(const zc::Tensor3f& orig, const zc::Tensor3f& dec, int nt,
                       zc::StencilReport& out) {
    const auto& d = orig.dims();
    const zc::AxisRange rx = zc::interior(d.h, 1);
    const zc::AxisRange ry = zc::interior(d.w, 1);
    const zc::AxisRange rz = zc::interior(d.l, 1);
    double sum_o = 0, sum_d = 0, max_o = 0, max_d = 0, sum_sq = 0, axis_o = 0, axis_d = 0;
    std::int64_t count = 0;

#pragma omp parallel for num_threads(nt) collapse(2) reduction(+ : sum_o, sum_d, sum_sq, \
        axis_o, axis_d, count) reduction(max : max_o, max_d)
    for (std::int64_t x = static_cast<std::int64_t>(rx.begin);
         x < static_cast<std::int64_t>(rx.end); ++x) {
        for (std::int64_t y = static_cast<std::int64_t>(ry.begin);
             y < static_cast<std::int64_t>(ry.end); ++y) {
            for (std::size_t z = rz.begin; z < rz.end; ++z) {
                const auto xo = static_cast<std::size_t>(x);
                const auto yo = static_cast<std::size_t>(y);
                const zc::StencilPoint po = kOrder == 1 ? zc::stencil_order1(orig, xo, yo, z)
                                                        : zc::stencil_order2(orig, xo, yo, z);
                const zc::StencilPoint pd = kOrder == 1 ? zc::stencil_order1(dec, xo, yo, z)
                                                        : zc::stencil_order2(dec, xo, yo, z);
                sum_o += po.magnitude;
                sum_d += pd.magnitude;
                max_o = std::max(max_o, po.magnitude);
                max_d = std::max(max_d, pd.magnitude);
                const double diff = pd.magnitude - po.magnitude;
                sum_sq += diff * diff;
                axis_o += po.axis_sum;
                axis_d += pd.axis_sum;
                ++count;
            }
        }
    }
    if (count == 0) return;
    const double cn = static_cast<double>(count);
    if constexpr (kOrder == 1) {
        out.deriv1_avg_orig = sum_o / cn;
        out.deriv1_max_orig = max_o;
        out.deriv1_avg_dec = sum_d / cn;
        out.deriv1_max_dec = max_d;
        out.deriv1_mse = sum_sq / cn;
        out.divergence_avg_orig = axis_o / cn;
        out.divergence_avg_dec = axis_d / cn;
    } else {
        out.deriv2_avg_orig = sum_o / cn;
        out.deriv2_max_orig = max_o;
        out.deriv2_avg_dec = sum_d / cn;
        out.deriv2_max_dec = max_d;
        out.deriv2_mse = sum_sq / cn;
        out.laplacian_avg_orig = axis_o / cn;
        out.laplacian_avg_dec = axis_d / cn;
    }
}

}  // namespace

zc::StencilReport stencil_metrics(const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                                  const zc::MetricsConfig& cfg, int threads) {
    zc::StencilReport out;
    const int nt = resolve_threads(threads);
    omp_stencil_order<1>(orig, dec, nt, out);
    if (cfg.deriv_orders >= 2) omp_stencil_order<2>(orig, dec, nt, out);

    // Autocorrelation: one parallel pass per lag (metric-oriented).
    const int max_lag = std::max(cfg.autocorr_max_lag, 0);
    out.autocorr.assign(max_lag, 0.0);
    if (max_lag == 0 || orig.size() == 0) return out;
    const zc::ErrorMoments m = zc::error_moments(orig, dec);
    const auto& d = orig.dims();
    const auto err = [&](std::size_t x, std::size_t y, std::size_t z) {
        return static_cast<double>(dec(x, y, z)) - orig(x, y, z) - m.mean;
    };
    for (int lag = 1; lag <= max_lag; ++lag) {
        const auto tau = static_cast<std::size_t>(lag);
        const bool ax = d.h > tau, ay = d.w > tau, az = d.l > tau;
        const int valid_axes = (ax ? 1 : 0) + (ay ? 1 : 0) + (az ? 1 : 0);
        if (valid_axes == 0 || m.var <= 0) continue;
        const auto hx = static_cast<std::int64_t>(ax ? d.h - tau : d.h);
        const auto hy = static_cast<std::int64_t>(ay ? d.w - tau : d.w);
        const auto hz = static_cast<std::int64_t>(az ? d.l - tau : d.l);
        double sum = 0;
#pragma omp parallel for num_threads(nt) collapse(2) reduction(+ : sum)
        for (std::int64_t x = 0; x < hx; ++x) {
            for (std::int64_t y = 0; y < hy; ++y) {
                for (std::int64_t z = 0; z < hz; ++z) {
                    const auto xs = static_cast<std::size_t>(x);
                    const auto ys = static_cast<std::size_t>(y);
                    const auto zs = static_cast<std::size_t>(z);
                    const double c = err(xs, ys, zs);
                    double acc = 0;
                    if (ax) acc += err(xs + tau, ys, zs);
                    if (ay) acc += err(xs, ys + tau, zs);
                    if (az) acc += err(xs, ys, zs + tau);
                    sum += c * acc / valid_axes;
                }
            }
        }
        out.autocorr[tau - 1] = sum / (static_cast<double>(hx) * hy * hz) / m.var;
    }
    return out;
}

zc::SsimReport ssim(const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                    const zc::MetricsConfig& cfg, int threads) {
    zc::SsimReport out;
    const auto& d = orig.dims();
    if (orig.size() == 0 || cfg.ssim_window <= 0 || cfg.ssim_step <= 0) return out;
    const int nt = resolve_threads(threads);

    const std::size_t wx = zc::effective_window(d.h, static_cast<std::size_t>(cfg.ssim_window));
    const std::size_t wy = zc::effective_window(d.w, static_cast<std::size_t>(cfg.ssim_window));
    const std::size_t wz = zc::effective_window(d.l, static_cast<std::size_t>(cfg.ssim_window));
    const auto s = static_cast<std::size_t>(cfg.ssim_step);
    const auto nx = static_cast<std::int64_t>((d.h - wx) / s + 1);
    const auto ny = static_cast<std::int64_t>((d.w - wy) / s + 1);
    const auto nz = static_cast<std::int64_t>((d.l - wz) / s + 1);

    double total = 0;
#pragma omp parallel for num_threads(nt) collapse(2) reduction(+ : total)
    for (std::int64_t ix = 0; ix < nx; ++ix) {
        for (std::int64_t iy = 0; iy < ny; ++iy) {
            for (std::int64_t iz = 0; iz < nz; ++iz) {
                const std::size_t x0 = static_cast<std::size_t>(ix) * s;
                const std::size_t y0 = static_cast<std::size_t>(iy) * s;
                const std::size_t z0 = static_cast<std::size_t>(iz) * s;
                zc::WindowSums a{orig(x0, y0, z0), orig(x0, y0, z0), 0, 0};
                zc::WindowSums b{dec(x0, y0, z0), dec(x0, y0, z0), 0, 0};
                zc::WindowCross c{};
                for (std::size_t x = x0; x < x0 + wx; ++x) {
                    for (std::size_t y = y0; y < y0 + wy; ++y) {
                        for (std::size_t z = z0; z < z0 + wz; ++z) {
                            const double xv = orig(x, y, z);
                            const double yv = dec(x, y, z);
                            a.min = std::min(a.min, xv);
                            a.max = std::max(a.max, xv);
                            a.sum += xv;
                            a.sum_sq += xv * xv;
                            b.min = std::min(b.min, yv);
                            b.max = std::max(b.max, yv);
                            b.sum += yv;
                            b.sum_sq += yv * yv;
                            c.sum_xy += xv * yv;
                        }
                    }
                }
                total += zc::mix_local_ssim(a, b, c, wx * wy * wz);
            }
        }
    }
    out.windows = static_cast<std::size_t>(nx * ny * nz);
    out.ssim = out.windows > 0 ? total / static_cast<double>(out.windows) : 0.0;
    return out;
}

zc::AssessmentReport assess(const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                            const zc::MetricsConfig& cfg, int threads) {
    zc::AssessmentReport report;
    if (cfg.pattern1) report.reduction = reduction_metrics(orig, dec, cfg, threads);
    if (cfg.pattern2) report.stencil = stencil_metrics(orig, dec, cfg, threads);
    if (cfg.pattern3) report.ssim = ssim(orig, dec, cfg, threads);
    return report;
}

}  // namespace cuzc::ompzc
