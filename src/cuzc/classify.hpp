#pragma once

#include <span>

#include "zc/metrics_config.hpp"

namespace cuzc::cuzc {

/// The coordinator's classification step (paper §III-A): "the coordinator
/// first identifies the category of the user-requested metrics and then
/// invokes the corresponding optimized fused CUDA kernel". Given any set
/// of requested metrics, enable exactly the pattern kernels that cover
/// them — requesting one more metric of an already-enabled pattern is
/// free, which is the economics the fused design creates.
[[nodiscard]] zc::MetricsConfig classify_request(std::span<const zc::Metric> requested,
                                                 const zc::MetricsConfig& params = {});

}  // namespace cuzc::cuzc
