#include "classify.hpp"

namespace cuzc::cuzc {

zc::MetricsConfig classify_request(std::span<const zc::Metric> requested,
                                   const zc::MetricsConfig& params) {
    zc::MetricsConfig cfg = params;
    cfg.pattern1 = false;
    cfg.pattern2 = false;
    cfg.pattern3 = false;
    for (const zc::Metric m : requested) {
        switch (zc::pattern_of(m)) {
            case zc::Pattern::kGlobalReduction: cfg.pattern1 = true; break;
            case zc::Pattern::kStencil: cfg.pattern2 = true; break;
            case zc::Pattern::kSlidingWindow: cfg.pattern3 = true; break;
        }
    }
    return cfg;
}

}  // namespace cuzc::cuzc
