#pragma once

#include <vector>

#include "pattern1.hpp"
#include "pattern2.hpp"
#include "pattern3.hpp"
#include "vgpu/vgpu.hpp"
#include "zc/field_buffer.hpp"
#include "zc/metrics_config.hpp"
#include "zc/report.hpp"
#include "zc/tensor.hpp"

namespace cuzc::cuzc {

/// Full cuZ-Checker assessment output: the report plus the profile of every
/// kernel the coordinator launched, grouped by pattern.
struct CuzcResult {
    zc::AssessmentReport report;
    vgpu::KernelStats pattern1;
    vgpu::KernelStats pattern2;
    vgpu::KernelStats pattern3;

    [[nodiscard]] vgpu::KernelStats total() const {
        vgpu::KernelStats t = pattern1;
        t.name = "cuzc/total";
        t.merge(pattern2);
        t.merge(pattern3);
        return t;
    }
};

/// The GPU module coordinator (paper §III-A): classifies the requested
/// metrics by computational pattern, uploads the field pair to device
/// memory once, and invokes the fused kernel of each enabled pattern.
/// Cross-pattern data reuse: when pattern 1 runs, its error moments feed
/// pattern 2's autocorrelation normalization, saving the extra moments
/// kernel.
[[nodiscard]] CuzcResult assess(vgpu::Device& dev, const zc::Tensor3f& orig,
                                const zc::Tensor3f& dec, const zc::MetricsConfig& cfg,
                                const Pattern3Options& p3_opt = {});

/// Zero-copy variant: the device buffers `adopt` the ref-counted field
/// payloads instead of memcpy-ing them in. The modeled transfer charges
/// and the fault-injection event stream are identical to the Tensor3f
/// overload, so reports are bit-identical either way.
[[nodiscard]] CuzcResult assess(vgpu::Device& dev, const zc::FieldRef& orig,
                                const zc::FieldRef& dec, const zc::MetricsConfig& cfg,
                                const Pattern3Options& p3_opt = {});

/// The same assessment driven from already-uploaded device buffers — the
/// shared core behind `assess`, `assess_batch`, and the `cuzc::serve`
/// workers, all of which manage upload/reuse of the buffer pair themselves.
[[nodiscard]] CuzcResult assess_device(vgpu::Device& dev, const vgpu::DeviceBuffer<float>& d_orig,
                                       const vgpu::DeviceBuffer<float>& d_dec,
                                       const zc::Dims3& dims, const zc::MetricsConfig& cfg,
                                       const Pattern3Options& p3_opt = {});

}  // namespace cuzc::cuzc
