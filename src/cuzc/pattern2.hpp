#pragma once

#include <vector>

#include "vgpu/vgpu.hpp"
#include "zc/autocorr.hpp"
#include "zc/metrics_config.hpp"
#include "zc/report.hpp"
#include "zc/tensor.hpp"

namespace cuzc::cuzc {

struct Pattern2Result {
    zc::StencilReport report;
    /// Raw accumulator totals (mergeable across subdomains): 7 slots per
    /// derivative order, the interior point count, then one sum per lag.
    std::vector<double> totals;
    vgpu::KernelStats stats;
};

/// x/y-tile staging is mostly sequential in z (the contiguous axis), with
/// strided halo columns: good but not perfect coalescing.
inline constexpr double kPattern2Coalescing = 0.80;
/// Stencil inner loops expose moderate ILP between barriers.
inline constexpr double kPattern2Serialization = 2.4;

/// Largest autocorrelation lag the fused kernel's shared-memory halo
/// supports (halo tiles are (kTile + lag)^2).
inline constexpr int kPattern2MaxLag = 16;

/// Mean/variance of the error field, computed on-device with a small fused
/// two-slot reduction kernel ("cuzc/moments"); the coordinator instead
/// derives these from pattern-1's results when both patterns run, saving
/// the launch (cross-pattern data reuse).
[[nodiscard]] zc::ErrorMoments error_moments_device(vgpu::Device& dev,
                                                    const vgpu::DeviceBuffer<float>& d_orig,
                                                    const vgpu::DeviceBuffer<float>& d_dec,
                                                    const zc::Dims3& dims);

/// Which pattern-2 metrics one launch computes. cuZC fuses everything into
/// a single launch; the moZC baseline issues one launch per metric family
/// (order-1 derivative + divergence, order-2 derivative + Laplacian,
/// autocorrelation), re-reading the data each time.
/// Subdomain description for multi-device decomposition along z. The
/// kernel runs on a z-slab (the buffer includes halo slices); only centres
/// with local z in [z_center_begin, z_center_end) are accumulated, and all
/// domain-boundary predicates use global coordinates so slab seams are not
/// mistaken for domain edges.
struct Pattern2Subdomain {
    std::size_t z_center_begin = 0;
    std::size_t z_center_end = static_cast<std::size_t>(-1);  // clamped to the slab
    std::size_t z_global_offset = 0;
    std::size_t l_global = 0;  ///< 0 => the slab is the whole domain
};

struct Pattern2Options {
    bool order1 = true;
    bool order2 = true;
    bool autocorr = true;
    const char* name = "cuzc/pattern2";
    Pattern2Subdomain sub{};
};

/// Fold raw kernel totals into a stencil report (the host-side finish used
/// by both the single-device path and the multi-GPU merge). `global_dims`
/// are the whole domain's dimensions.
void finalize_pattern2(const std::vector<double>& totals, const zc::Dims3& global_dims,
                       const zc::MetricsConfig& cfg, const zc::ErrorMoments& moments,
                       bool order1, bool order2, bool autocorr, zc::StencilReport& out);

/// The paper's Algorithm 2: a single fused kernel computes both derivative
/// orders, divergence, Laplacian, and every autocorrelation lag. Thread
/// blocks own z-chunks (so the block count is governed by the z-extent —
/// the paper's Table II shape effect for Hurricane/Scale-LETKF); (x,y)
/// tiles are staged into shared memory with a one-sided halo of `max_lag`
/// for the lagged error reads, and a shared-memory FIFO of error tiles
/// serves the z-direction lags so each slice is loaded from global memory
/// once per tile.
[[nodiscard]] Pattern2Result pattern2_fused_device(vgpu::Device& dev,
                                                   const vgpu::DeviceBuffer<float>& d_orig,
                                                   const vgpu::DeviceBuffer<float>& d_dec,
                                                   const zc::Dims3& dims,
                                                   const zc::MetricsConfig& cfg,
                                                   const zc::ErrorMoments& moments,
                                                   const Pattern2Options& opt = {});

[[nodiscard]] Pattern2Result pattern2_fused(vgpu::Device& dev, const zc::Tensor3f& orig,
                                            const zc::Tensor3f& dec,
                                            const zc::MetricsConfig& cfg);

}  // namespace cuzc::cuzc
