#include "pattern1.hpp"

#include <algorithm>
#include <cassert>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "slot_reduce.hpp"
#include "zc/reduction_metrics.hpp"

namespace cuzc::cuzc {

namespace {

using vgpu::BlockCtx;
using vgpu::Launch;
using vgpu::RegArray;
using vgpu::ThreadCtx;
using vgpu::WarpCtx;

/// Accumulator slot layout of the fused kernel. Each slot is one of the 14+
/// concurrent reductions the paper's reduce() performs per memory access.
enum Slot : std::uint32_t {
    kMinErr, kMaxErr, kSumErr, kSumAbsErr, kSumErrSq,
    kMinPwr, kMaxPwr, kSumPwrAbs,
    kMinVal, kMaxVal, kSumVal, kSumValSq,
    kSumDec, kSumDecSq, kSumCross,
    kNumSlots,
};

// The fused SIMD primitive updates the slots in this exact layout.
namespace simd = vgpu::simd;
constexpr bool slot_matches(Slot a, simd::P1Slot b) {
    return static_cast<std::uint32_t>(a) == static_cast<std::uint32_t>(b);
}
static_assert(slot_matches(kMinErr, simd::kP1MinErr) && slot_matches(kMaxErr, simd::kP1MaxErr) &&
              slot_matches(kSumErr, simd::kP1SumErr) &&
              slot_matches(kSumAbsErr, simd::kP1SumAbsErr) &&
              slot_matches(kSumErrSq, simd::kP1SumErrSq) &&
              slot_matches(kMinPwr, simd::kP1MinPwr) && slot_matches(kMaxPwr, simd::kP1MaxPwr) &&
              slot_matches(kSumPwrAbs, simd::kP1SumPwrAbs) &&
              slot_matches(kMinVal, simd::kP1MinVal) && slot_matches(kMaxVal, simd::kP1MaxVal) &&
              slot_matches(kSumVal, simd::kP1SumVal) &&
              slot_matches(kSumValSq, simd::kP1SumValSq) &&
              slot_matches(kSumDec, simd::kP1SumDec) && slot_matches(kSumDecSq, simd::kP1SumDecSq) &&
              slot_matches(kSumCross, simd::kP1SumCross) &&
              slot_matches(kNumSlots, simd::kP1NumSlots));

constexpr bool is_min(std::uint32_t slot) {
    return slot == kMinErr || slot == kMinPwr || slot == kMinVal;
}
constexpr bool is_max(std::uint32_t slot) {
    return slot == kMaxErr || slot == kMaxPwr || slot == kMaxVal;
}

[[nodiscard]] SlotOp op_of_slot(std::uint32_t slot) {
    if (is_min(slot)) return SlotOp::kMin;
    if (is_max(slot)) return SlotOp::kMax;
    return SlotOp::kSum;
}

double identity(std::uint32_t slot) { return slot_identity(op_of_slot(slot)); }

double combine(std::uint32_t slot, double a, double b) {
    return slot_combine(op_of_slot(slot), a, b);
}

}  // namespace

Pattern1Result pattern1_fused_device(vgpu::Device& dev, const vgpu::DeviceBuffer<float>& d_orig,
                                     const vgpu::DeviceBuffer<float>& d_dec, const zc::Dims3& dims,
                                     const zc::MetricsConfig& cfg, const Pattern1Options& opt) {
    Pattern1Result result;
    const std::size_t h = dims.h, w = dims.w, l = dims.l;
    const std::size_t z_lo = std::min(opt.z_begin, l);
    const std::size_t z_hi = std::min(opt.z_end, l);
    const std::size_t zn = z_hi > z_lo ? z_hi - z_lo : 0;
    const std::size_t n = h * w * zn;
    if (n == 0) return result;
    const int bins = std::max(1, cfg.pdf_bins);
    const double pwr_eps = cfg.pwr_eps;

    vgpu::DeviceBuffer<double> d_part(dev, zn * kNumSlots);
    vgpu::DeviceBuffer<double> d_final(dev, kNumSlots);
    vgpu::DeviceBuffer<double> d_hist(dev, static_cast<std::size_t>(bins) * 3);
    d_hist.fill(0.0);

    const vgpu::LaunchConfig cfg1{"cuzc/pattern1", vgpu::Dim3{static_cast<std::uint32_t>(zn), 1, 1},
                                  vgpu::Dim3{32, 8, 1}};

    // Phase 1 (Alg. 1 ln. 4-16): per-slice fused reductions.
    vgpu::CoopPhase phase_slice = [&](Launch& lnch, BlockCtx& blk) {
        auto dorig = lnch.span(d_orig);
        auto ddec = lnch.span(d_dec);
        auto dpart = lnch.span(d_part);
        auto acc = blk.make_regs<double>(kNumSlots);
        const std::size_t bidx = blk.block_idx().x;
        const std::size_t zidx = z_lo + bidx;
        // The block reads each of the slice's h*w elements of both inputs
        // exactly once (strided by l); charge each span as one footprint.
        const float* po = dorig.ld_footprint(h * w);
        const float* pd = ddec.ld_footprint(h * w);
        // Warp-major form of the scalar per-thread loop: warp ty owns lanes
        // tx (the i axis), and each (i-chunk, j) pair is one fused 15-slot
        // SIMD update of the warp's in-bounds lanes. The i-outer/j-inner
        // chunk order reproduces each thread's scalar fold sequence exactly,
        // so the per-lane accumulators — kept in a slot-major slab so the
        // vector primitive sees contiguous lanes — are bit-identical to the
        // per-element loop on every backend.
        const simd::Ops& lane_ops = simd::ops();
        double slab[kNumSlots][256];
        for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
            std::fill_n(slab[slot], 256, identity(slot));
        }
        blk.for_each_warp([&](WarpCtx& wc) {
            const std::uint32_t ty = wc.warp_id();
            std::uint64_t iters = 0;
            for (std::size_t i0 = 0; i0 < h; i0 += 32) {
                const auto nlanes =
                    static_cast<std::uint32_t>(std::min<std::size_t>(32, h - i0));
                for (std::size_t j = ty; j < w; j += 8) {
                    const std::size_t idx0 = (i0 * w + j) * l + zidx;
                    // The i-axis stride (w*l floats) puts every lane on its
                    // own cache line; hardware prefetchers never catch the
                    // pattern, so hint the next j-iteration's lanes while the
                    // current chunk computes.
                    if (j + 8 < w) {
                        const float* npo = po + idx0 + 8 * l;
                        const float* npd = pd + idx0 + 8 * l;
                        for (std::uint32_t ln = 0; ln < nlanes; ++ln) {
                            __builtin_prefetch(npo + ln * w * l);
                            __builtin_prefetch(npd + ln * w * l);
                        }
                    }
                    lane_ops.p1_update(po + idx0, pd + idx0, w * l, pwr_eps,
                                       &slab[0][wc.base_linear()], 256, nlanes);
                    iters += nlanes;
                }
            }
            blk.add_iters(iters);
            blk.add_ops(iters * 30);
        });
        blk.for_each_thread([&](ThreadCtx& t) {
            for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
                acc(t, slot) = slab[slot][t.linear];
            }
        });
        block_reduce_slots(blk, acc, kNumSlots, op_of_slot);
        blk.for_each_thread([&](ThreadCtx& t) {
            if (t.linear == 0) {
                for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
                    dpart.st(bidx * kNumSlots + slot, acc(t, slot));
                }
            }
        });
    };

    // Phase 2 (Alg. 1 ln. 18-23, after cg::sync(grid)): block 0 folds the
    // per-slice partials into the device-wide totals.
    vgpu::CoopPhase phase_final = [&](Launch& lnch, BlockCtx& blk) {
        if (blk.block_idx().x != 0) return;
        auto dpart = lnch.span(d_part);
        auto dfinal = lnch.span(d_final);
        auto acc = blk.make_regs<double>(kNumSlots);
        // Block 0 consumes the whole partial array; one bulk load charges
        // the same bytes as the per-slot loads.
        const double* pp = dpart.ld_bulk(0, zn * kNumSlots);
        blk.for_each_thread([&](ThreadCtx& t) {
            for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) acc(t, slot) = identity(slot);
            std::uint64_t iters = 0;
            for (std::size_t b = t.linear; b < zn; b += blk.num_threads()) {
                for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
                    acc(t, slot) = combine(slot, acc(t, slot), pp[b * kNumSlots + slot]);
                }
                ++iters;
            }
            blk.add_iters(iters);
            blk.add_ops(iters * kNumSlots);
        });
        block_reduce_slots(blk, acc, kNumSlots, op_of_slot);
        blk.for_each_thread([&](ThreadCtx& t) {
            if (t.linear == 0) {
                for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
                    dfinal.st(slot, acc(t, slot));
                }
            }
        });
    };

    // Phase 3: histogram fill, binning against the phase-2 min/max. Each
    // block builds its slice's local histograms in shared memory, then
    // folds them into the global ones (atomicAdd on real hardware; block
    // execution is serialized in the virtual runtime, so plain RMW has the
    // same semantics).
    vgpu::CoopPhase phase_hist = [&](Launch& lnch, BlockCtx& blk) {
        auto dorig = lnch.span(d_orig);
        auto ddec = lnch.span(d_dec);
        auto dfinal = lnch.span(d_final);
        auto dhist = lnch.span(d_hist);
        auto local = blk.shared().alloc<double>(static_cast<std::size_t>(bins) * 3);
        // Collective zero-init: one bulk store charges the same bytes as the
        // thread-strided per-element stores.
        std::fill_n(local.st_bulk(0, static_cast<std::size_t>(bins) * 3),
                    static_cast<std::size_t>(bins) * 3, 0.0);
        const bool fixed = opt.fixed_ranges != nullptr;
        const double min_err = fixed ? opt.fixed_ranges->min_err : dfinal.ld(kMinErr);
        const double max_err = fixed ? opt.fixed_ranges->max_err : dfinal.ld(kMaxErr);
        const double min_pwr = fixed ? opt.fixed_ranges->min_pwr : dfinal.ld(kMinPwr);
        const double max_pwr = fixed ? opt.fixed_ranges->max_pwr : dfinal.ld(kMaxPwr);
        const double min_val = fixed ? opt.fixed_ranges->min_val : dfinal.ld(kMinVal);
        const double max_val = fixed ? opt.fixed_ranges->max_val : dfinal.ld(kMaxVal);
        const std::size_t zidx = z_lo + blk.block_idx().x;
        // Same slice-footprint charging as the reduction phase.
        const float* po = dorig.ld_footprint(h * w);
        const float* pd = ddec.ld_footprint(h * w);
        // Warp-major binning: gather/convert/bin a warp's lanes with the
        // lane engine, then land the +1.0 increments with a scalar RMW loop
        // (histogram bins collide, so the commit cannot vectorize; the adds
        // are exactly commutative, so lane order does not matter). Charges
        // match the per-element loop: 3 shared loads + 3 shared stores per
        // element via the unbounded ld_charge/st_charge forms, since the
        // charged count per chunk (3*nlanes) can exceed the 3*bins array.
        const simd::Ops& lane_ops = simd::ops();
        const bool ok_e = max_err > min_err;
        const bool ok_p = max_pwr > min_pwr;
        const bool ok_v = max_val > min_val;
        blk.for_each_warp([&](WarpCtx& wc) {
            const std::uint32_t ty = wc.warp_id();
            double xs[32], ys[32], es[32], ps[32];
            std::int32_t be[32], bp[32], bv[32];
            std::uint64_t iters = 0;
            for (std::size_t i0 = 0; i0 < h; i0 += 32) {
                const auto nlanes =
                    static_cast<std::uint32_t>(std::min<std::size_t>(32, h - i0));
                for (std::size_t j = ty; j < w; j += 8) {
                    const std::size_t idx0 = (i0 * w + j) * l + zidx;
                    // Same next-iteration lane prefetch as the reduction
                    // phase; the stride defeats the hardware prefetchers.
                    if (j + 8 < w) {
                        const float* npo = po + idx0 + 8 * l;
                        const float* npd = pd + idx0 + 8 * l;
                        for (std::uint32_t ln = 0; ln < nlanes; ++ln) {
                            __builtin_prefetch(npo + ln * w * l);
                            __builtin_prefetch(npd + ln * w * l);
                        }
                    }
                    lane_ops.cvt_strided(xs, po + idx0, w * l, nlanes);
                    lane_ops.cvt_strided(ys, pd + idx0, w * l, nlanes);
                    lane_ops.sub(es, ys, xs, nlanes);
                    lane_ops.pwr(ps, xs, ys, pwr_eps, nlanes);
                    if (ok_e) lane_ops.pdf_bins(be, es, min_err, max_err - min_err, bins, nlanes);
                    else std::fill_n(be, nlanes, 0);
                    if (ok_p) lane_ops.pdf_bins(bp, ps, min_pwr, max_pwr - min_pwr, bins, nlanes);
                    else std::fill_n(bp, nlanes, 0);
                    if (ok_v) lane_ops.pdf_bins(bv, xs, min_val, max_val - min_val, bins, nlanes);
                    else std::fill_n(bv, nlanes, 0);
                    (void)local.ld_charge(std::size_t{3} * nlanes);
                    double* lw = local.st_charge(std::size_t{3} * nlanes);
                    for (std::uint32_t ln = 0; ln < nlanes; ++ln) {
                        lw[static_cast<std::size_t>(be[ln])] += 1.0;
                        lw[static_cast<std::size_t>(bins) + static_cast<std::size_t>(bp[ln])] += 1.0;
                        lw[2 * static_cast<std::size_t>(bins) + static_cast<std::size_t>(bv[ln])] +=
                            1.0;
                    }
                    iters += nlanes;
                }
            }
            blk.add_iters(iters);
            blk.add_ops(iters * 12);
        });
        // Fold the block-local histograms into the global ones (atomicAdd on
        // hardware; blocks are serialized here, so plain RMW through bulk
        // windows charges the same bytes as the strided per-element loop).
        {
            const std::size_t nb = static_cast<std::size_t>(bins) * 3;
            const double* lp = local.ld_bulk(0, nb);
            const double* hr = dhist.ld_bulk(0, nb);
            double* hw = dhist.st_bulk(0, nb);
            for (std::size_t b = 0; b < nb; ++b) hw[b] = hr[b] + lp[b];
        }
    };

    std::vector<vgpu::CoopPhase> phases;
    if (opt.reductions) {
        phases.push_back(phase_slice);
        phases.push_back(phase_final);
    }
    if (opt.histograms) {
        assert((opt.reductions || opt.fixed_ranges != nullptr) &&
               "histogram-only launch requires fixed ranges");
        phases.push_back(phase_hist);
    }
    vgpu::KernelStats& stats = vgpu::coop_launch(dev, cfg1, phases);
    stats.coalescing = kPattern1Coalescing;
    stats.serialization = kPattern1Serialization;
    result.stats = stats;

    // Host-side assembly of the report from the device results.
    zc::ReductionMoments& m = result.moments;
    m.n = n;
    if (opt.reductions) {
        const std::vector<double> fin = d_final.download();
        m.min_err = fin[kMinErr];
        m.max_err = fin[kMaxErr];
        m.sum_err = fin[kSumErr];
        m.sum_abs_err = fin[kSumAbsErr];
        m.sum_err_sq = fin[kSumErrSq];
        m.min_pwr = fin[kMinPwr];
        m.max_pwr = fin[kMaxPwr];
        m.sum_pwr_abs = fin[kSumPwrAbs];
        m.min_val = fin[kMinVal];
        m.max_val = fin[kMaxVal];
        m.sum_val = fin[kSumVal];
        m.sum_val_sq = fin[kSumValSq];
        m.sum_dec = fin[kSumDec];
        m.sum_dec_sq = fin[kSumDecSq];
        m.sum_cross = fin[kSumCross];
        zc::finalize_reduction(m, result.report);
    }

    if (opt.histograms) {
        result.raw_hist = d_hist.download();
        const std::vector<double>& hist = result.raw_hist;
        const double min_err2 = opt.fixed_ranges ? opt.fixed_ranges->min_err : m.min_err;
        const double max_err2 = opt.fixed_ranges ? opt.fixed_ranges->max_err : m.max_err;
        const double min_pwr2 = opt.fixed_ranges ? opt.fixed_ranges->min_pwr : m.min_pwr;
        const double max_pwr2 = opt.fixed_ranges ? opt.fixed_ranges->max_pwr : m.max_pwr;
        result.report.err_pdf.assign(hist.begin(), hist.begin() + bins);
        result.report.pwr_err_pdf.assign(hist.begin() + bins, hist.begin() + 2 * bins);
        result.report.err_pdf_min = min_err2;
        result.report.err_pdf_max = max_err2;
        result.report.pwr_err_pdf_min = min_pwr2;
        result.report.pwr_err_pdf_max = max_pwr2;
        const double inv_n = 1.0 / static_cast<double>(n);
        double entropy = 0.0;
        for (int b = 0; b < bins; ++b) {
            result.report.err_pdf[static_cast<std::size_t>(b)] *= inv_n;
            result.report.pwr_err_pdf[static_cast<std::size_t>(b)] *= inv_n;
            const double pv = hist[static_cast<std::size_t>(2 * bins + b)] * inv_n;
            if (pv > 0) entropy -= pv * std::log2(pv);
        }
        result.report.entropy = entropy;
    }
    return result;
}

Pattern1Result pattern1_fused(vgpu::Device& dev, const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                              const zc::MetricsConfig& cfg) {
    vgpu::DeviceBuffer<float> d_orig(dev, orig.data());
    vgpu::DeviceBuffer<float> d_dec(dev, dec.data());
    return pattern1_fused_device(dev, d_orig, d_dec, orig.dims(), cfg);
}

}  // namespace cuzc::cuzc
