#include "pattern1.hpp"

#include <algorithm>
#include <cassert>
#include <array>
#include <cmath>
#include <limits>

#include "zc/reduction_metrics.hpp"

namespace cuzc::cuzc {

namespace {

using vgpu::BlockCtx;
using vgpu::Launch;
using vgpu::RegArray;
using vgpu::ThreadCtx;
using vgpu::WarpCtx;

/// Accumulator slot layout of the fused kernel. Each slot is one of the 14+
/// concurrent reductions the paper's reduce() performs per memory access.
enum Slot : std::uint32_t {
    kMinErr, kMaxErr, kSumErr, kSumAbsErr, kSumErrSq,
    kMinPwr, kMaxPwr, kSumPwrAbs,
    kMinVal, kMaxVal, kSumVal, kSumValSq,
    kSumDec, kSumDecSq, kSumCross,
    kNumSlots,
};

constexpr bool is_min(std::uint32_t slot) {
    return slot == kMinErr || slot == kMinPwr || slot == kMinVal;
}
constexpr bool is_max(std::uint32_t slot) {
    return slot == kMaxErr || slot == kMaxPwr || slot == kMaxVal;
}

double identity(std::uint32_t slot) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (is_min(slot)) return kInf;
    if (is_max(slot)) return -kInf;
    return 0.0;
}

double combine(std::uint32_t slot, double a, double b) {
    if (is_min(slot)) return a < b ? a : b;
    if (is_max(slot)) return a > b ? a : b;
    return a + b;
}

/// Warp shuffles + cross-warp shared step + slot write-back: the shared
/// block-level reduction machinery of Algorithm 1 (ln. 7-16), leaving the
/// block result of every slot in thread 0's registers.
void block_reduce_slots(BlockCtx& blk, RegArray<double>& acc) {
    blk.for_each_warp([&](WarpCtx& w) {
        for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
            w.reduce_shfl_down(acc, slot, [slot](double a, double b) {
                return combine(slot, a, b);
            });
        }
    });
    auto warp_out = blk.shared().alloc<double>(std::size_t{kNumSlots} * blk.num_warps());
    blk.for_each_thread([&](ThreadCtx& t) {
        if (t.lane == 0) {
            for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
                warp_out.st(t.warp * kNumSlots + slot, acc(t, slot));
            }
        }
    });
    // Cross-warp reduction on warp 0: lanes below num_warps reload the
    // per-warp partials (ballot mask selects them), then shuffle-reduce.
    const std::uint32_t nwarps = blk.num_warps();
    blk.for_each_warp([&](WarpCtx& w) {
        if (w.warp_id() != 0) return;
        const std::uint32_t mask = w.ballot([&](std::uint32_t lane) { return lane < nwarps; });
        for (std::uint32_t lane = 0; lane < w.active_lanes(); ++lane) {
            for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
                acc.at(lane, slot) = lane < nwarps ? warp_out.ld(lane * kNumSlots + slot)
                                                   : identity(slot);
            }
        }
        for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
            w.reduce_shfl_down(acc, slot,
                               [slot](double a, double b) { return combine(slot, a, b); },
                               mask);
        }
    });
}

}  // namespace

Pattern1Result pattern1_fused_device(vgpu::Device& dev, const vgpu::DeviceBuffer<float>& d_orig,
                                     const vgpu::DeviceBuffer<float>& d_dec, const zc::Dims3& dims,
                                     const zc::MetricsConfig& cfg, const Pattern1Options& opt) {
    Pattern1Result result;
    const std::size_t h = dims.h, w = dims.w, l = dims.l;
    const std::size_t z_lo = std::min(opt.z_begin, l);
    const std::size_t z_hi = std::min(opt.z_end, l);
    const std::size_t zn = z_hi > z_lo ? z_hi - z_lo : 0;
    const std::size_t n = h * w * zn;
    if (n == 0) return result;
    const int bins = std::max(1, cfg.pdf_bins);
    const double pwr_eps = cfg.pwr_eps;

    vgpu::DeviceBuffer<double> d_part(dev, zn * kNumSlots);
    vgpu::DeviceBuffer<double> d_final(dev, kNumSlots);
    vgpu::DeviceBuffer<double> d_hist(dev, static_cast<std::size_t>(bins) * 3);
    d_hist.fill(0.0);

    const vgpu::LaunchConfig cfg1{"cuzc/pattern1", vgpu::Dim3{static_cast<std::uint32_t>(zn), 1, 1},
                                  vgpu::Dim3{32, 8, 1}};

    // Phase 1 (Alg. 1 ln. 4-16): per-slice fused reductions.
    vgpu::CoopPhase phase_slice = [&](Launch& lnch, BlockCtx& blk) {
        auto dorig = lnch.span(d_orig);
        auto ddec = lnch.span(d_dec);
        auto dpart = lnch.span(d_part);
        auto acc = blk.make_regs<double>(kNumSlots);
        blk.for_each_thread([&](ThreadCtx& t) {
            for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) acc(t, slot) = identity(slot);
        });
        const std::size_t bidx = blk.block_idx().x;
        const std::size_t zidx = z_lo + bidx;
        // The block reads each of the slice's h*w elements of both inputs
        // exactly once (strided by l); charge each span as one footprint.
        const float* po = dorig.ld_footprint(h * w);
        const float* pd = ddec.ld_footprint(h * w);
        blk.for_each_thread([&](ThreadCtx& t) {
            std::uint64_t iters = 0;
            for (std::size_t i = t.tid.x; i < h; i += blk.block_dim().x) {
                for (std::size_t j = t.tid.y; j < w; j += blk.block_dim().y) {
                    const std::size_t idx = (i * w + j) * l + zidx;
                    const double x = po[idx];
                    const double y = pd[idx];
                    const double e = y - x;
                    const double p = zc::pwr_error(x, y, pwr_eps);
                    acc(t, kMinErr) = std::min(acc(t, kMinErr), e);
                    acc(t, kMaxErr) = std::max(acc(t, kMaxErr), e);
                    acc(t, kSumErr) += e;
                    acc(t, kSumAbsErr) += std::fabs(e);
                    acc(t, kSumErrSq) += e * e;
                    acc(t, kMinPwr) = std::min(acc(t, kMinPwr), p);
                    acc(t, kMaxPwr) = std::max(acc(t, kMaxPwr), p);
                    acc(t, kSumPwrAbs) += std::fabs(p);
                    acc(t, kMinVal) = std::min(acc(t, kMinVal), x);
                    acc(t, kMaxVal) = std::max(acc(t, kMaxVal), x);
                    acc(t, kSumVal) += x;
                    acc(t, kSumValSq) += x * x;
                    acc(t, kSumDec) += y;
                    acc(t, kSumDecSq) += y * y;
                    acc(t, kSumCross) += x * y;
                    ++iters;
                }
            }
            blk.add_iters(iters);
            blk.add_ops(iters * 30);
        });
        block_reduce_slots(blk, acc);
        blk.for_each_thread([&](ThreadCtx& t) {
            if (t.linear == 0) {
                for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
                    dpart.st(bidx * kNumSlots + slot, acc(t, slot));
                }
            }
        });
    };

    // Phase 2 (Alg. 1 ln. 18-23, after cg::sync(grid)): block 0 folds the
    // per-slice partials into the device-wide totals.
    vgpu::CoopPhase phase_final = [&](Launch& lnch, BlockCtx& blk) {
        if (blk.block_idx().x != 0) return;
        auto dpart = lnch.span(d_part);
        auto dfinal = lnch.span(d_final);
        auto acc = blk.make_regs<double>(kNumSlots);
        // Block 0 consumes the whole partial array; one bulk load charges
        // the same bytes as the per-slot loads.
        const double* pp = dpart.ld_bulk(0, zn * kNumSlots);
        blk.for_each_thread([&](ThreadCtx& t) {
            for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) acc(t, slot) = identity(slot);
            std::uint64_t iters = 0;
            for (std::size_t b = t.linear; b < zn; b += blk.num_threads()) {
                for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
                    acc(t, slot) = combine(slot, acc(t, slot), pp[b * kNumSlots + slot]);
                }
                ++iters;
            }
            blk.add_iters(iters);
            blk.add_ops(iters * kNumSlots);
        });
        block_reduce_slots(blk, acc);
        blk.for_each_thread([&](ThreadCtx& t) {
            if (t.linear == 0) {
                for (std::uint32_t slot = 0; slot < kNumSlots; ++slot) {
                    dfinal.st(slot, acc(t, slot));
                }
            }
        });
    };

    // Phase 3: histogram fill, binning against the phase-2 min/max. Each
    // block builds its slice's local histograms in shared memory, then
    // folds them into the global ones (atomicAdd on real hardware; block
    // execution is serialized in the virtual runtime, so plain RMW has the
    // same semantics).
    vgpu::CoopPhase phase_hist = [&](Launch& lnch, BlockCtx& blk) {
        auto dorig = lnch.span(d_orig);
        auto ddec = lnch.span(d_dec);
        auto dfinal = lnch.span(d_final);
        auto dhist = lnch.span(d_hist);
        auto local = blk.shared().alloc<double>(static_cast<std::size_t>(bins) * 3);
        blk.for_each_thread([&](ThreadCtx& t) {
            for (std::size_t b = t.linear; b < static_cast<std::size_t>(bins) * 3;
                 b += blk.num_threads()) {
                local.st(b, 0.0);
            }
        });
        const bool fixed = opt.fixed_ranges != nullptr;
        const double min_err = fixed ? opt.fixed_ranges->min_err : dfinal.ld(kMinErr);
        const double max_err = fixed ? opt.fixed_ranges->max_err : dfinal.ld(kMaxErr);
        const double min_pwr = fixed ? opt.fixed_ranges->min_pwr : dfinal.ld(kMinPwr);
        const double max_pwr = fixed ? opt.fixed_ranges->max_pwr : dfinal.ld(kMaxPwr);
        const double min_val = fixed ? opt.fixed_ranges->min_val : dfinal.ld(kMinVal);
        const double max_val = fixed ? opt.fixed_ranges->max_val : dfinal.ld(kMaxVal);
        const std::size_t zidx = z_lo + blk.block_idx().x;
        // Same slice-footprint charging as the reduction phase.
        const float* po = dorig.ld_footprint(h * w);
        const float* pd = ddec.ld_footprint(h * w);
        blk.for_each_thread([&](ThreadCtx& t) {
            std::uint64_t iters = 0;
            for (std::size_t i = t.tid.x; i < h; i += blk.block_dim().x) {
                for (std::size_t j = t.tid.y; j < w; j += blk.block_dim().y) {
                    const std::size_t idx = (i * w + j) * l + zidx;
                    const double x = po[idx];
                    const double y = pd[idx];
                    const double e = y - x;
                    const double p = zc::pwr_error(x, y, pwr_eps);
                    const auto be = static_cast<std::size_t>(zc::pdf_bin(e, min_err, max_err, bins));
                    const auto bp = static_cast<std::size_t>(zc::pdf_bin(p, min_pwr, max_pwr, bins));
                    const auto bv = static_cast<std::size_t>(zc::pdf_bin(x, min_val, max_val, bins));
                    local.st(be, local.ld(be) + 1.0);
                    local.st(static_cast<std::size_t>(bins) + bp,
                             local.ld(static_cast<std::size_t>(bins) + bp) + 1.0);
                    local.st(2 * static_cast<std::size_t>(bins) + bv,
                             local.ld(2 * static_cast<std::size_t>(bins) + bv) + 1.0);
                    ++iters;
                }
            }
            blk.add_iters(iters);
            blk.add_ops(iters * 12);
        });
        blk.for_each_thread([&](ThreadCtx& t) {
            for (std::size_t b = t.linear; b < static_cast<std::size_t>(bins) * 3;
                 b += blk.num_threads()) {
                dhist.st(b, dhist.ld(b) + local.ld(b));  // atomicAdd on hardware
            }
        });
    };

    std::vector<vgpu::CoopPhase> phases;
    if (opt.reductions) {
        phases.push_back(phase_slice);
        phases.push_back(phase_final);
    }
    if (opt.histograms) {
        assert((opt.reductions || opt.fixed_ranges != nullptr) &&
               "histogram-only launch requires fixed ranges");
        phases.push_back(phase_hist);
    }
    vgpu::KernelStats& stats = vgpu::coop_launch(dev, cfg1, phases);
    stats.coalescing = kPattern1Coalescing;
    stats.serialization = kPattern1Serialization;
    result.stats = stats;

    // Host-side assembly of the report from the device results.
    zc::ReductionMoments& m = result.moments;
    m.n = n;
    if (opt.reductions) {
        const std::vector<double> fin = d_final.download();
        m.min_err = fin[kMinErr];
        m.max_err = fin[kMaxErr];
        m.sum_err = fin[kSumErr];
        m.sum_abs_err = fin[kSumAbsErr];
        m.sum_err_sq = fin[kSumErrSq];
        m.min_pwr = fin[kMinPwr];
        m.max_pwr = fin[kMaxPwr];
        m.sum_pwr_abs = fin[kSumPwrAbs];
        m.min_val = fin[kMinVal];
        m.max_val = fin[kMaxVal];
        m.sum_val = fin[kSumVal];
        m.sum_val_sq = fin[kSumValSq];
        m.sum_dec = fin[kSumDec];
        m.sum_dec_sq = fin[kSumDecSq];
        m.sum_cross = fin[kSumCross];
        zc::finalize_reduction(m, result.report);
    }

    if (opt.histograms) {
        result.raw_hist = d_hist.download();
        const std::vector<double>& hist = result.raw_hist;
        const double min_err2 = opt.fixed_ranges ? opt.fixed_ranges->min_err : m.min_err;
        const double max_err2 = opt.fixed_ranges ? opt.fixed_ranges->max_err : m.max_err;
        const double min_pwr2 = opt.fixed_ranges ? opt.fixed_ranges->min_pwr : m.min_pwr;
        const double max_pwr2 = opt.fixed_ranges ? opt.fixed_ranges->max_pwr : m.max_pwr;
        result.report.err_pdf.assign(hist.begin(), hist.begin() + bins);
        result.report.pwr_err_pdf.assign(hist.begin() + bins, hist.begin() + 2 * bins);
        result.report.err_pdf_min = min_err2;
        result.report.err_pdf_max = max_err2;
        result.report.pwr_err_pdf_min = min_pwr2;
        result.report.pwr_err_pdf_max = max_pwr2;
        const double inv_n = 1.0 / static_cast<double>(n);
        double entropy = 0.0;
        for (int b = 0; b < bins; ++b) {
            result.report.err_pdf[static_cast<std::size_t>(b)] *= inv_n;
            result.report.pwr_err_pdf[static_cast<std::size_t>(b)] *= inv_n;
            const double pv = hist[static_cast<std::size_t>(2 * bins + b)] * inv_n;
            if (pv > 0) entropy -= pv * std::log2(pv);
        }
        result.report.entropy = entropy;
    }
    return result;
}

Pattern1Result pattern1_fused(vgpu::Device& dev, const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                              const zc::MetricsConfig& cfg) {
    vgpu::DeviceBuffer<float> d_orig(dev, orig.data());
    vgpu::DeviceBuffer<float> d_dec(dev, dec.data());
    return pattern1_fused_device(dev, d_orig, d_dec, orig.dims(), cfg);
}

}  // namespace cuzc::cuzc
