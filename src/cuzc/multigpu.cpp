#include "multigpu.hpp"

#include <algorithm>
#include <cmath>

#include "pattern1.hpp"
#include "pattern2.hpp"
#include "pattern3.hpp"
#include "zc/ssim.hpp"

namespace cuzc::cuzc {

namespace {

/// Copy a z-slab [z0, z1) of a field (z is the contiguous axis, so each
/// (x, y) row contributes one contiguous chunk).
zc::Field slice_z(const zc::Tensor3f& f, std::size_t z0, std::size_t z1) {
    const auto& d = f.dims();
    zc::Field out(zc::Dims3{d.h, d.w, z1 - z0});
    std::size_t o = 0;
    for (std::size_t x = 0; x < d.h; ++x) {
        for (std::size_t y = 0; y < d.w; ++y) {
            for (std::size_t z = z0; z < z1; ++z) {
                out.data()[o++] = f(x, y, z);
            }
        }
    }
    return out;
}

/// Copy a y-slab [y0, y1) of a field.
zc::Field slice_y(const zc::Tensor3f& f, std::size_t y0, std::size_t y1) {
    const auto& d = f.dims();
    zc::Field out(zc::Dims3{d.h, y1 - y0, d.l});
    std::size_t o = 0;
    for (std::size_t x = 0; x < d.h; ++x) {
        for (std::size_t y = y0; y < y1; ++y) {
            for (std::size_t z = 0; z < d.l; ++z) {
                out.data()[o++] = f(x, y, z);
            }
        }
    }
    return out;
}

void merge_moments(zc::ReductionMoments& into, const zc::ReductionMoments& from) {
    if (from.n == 0) return;
    if (into.n == 0) {
        into = from;
        return;
    }
    into.n += from.n;
    into.min_val = std::min(into.min_val, from.min_val);
    into.max_val = std::max(into.max_val, from.max_val);
    into.sum_val += from.sum_val;
    into.sum_val_sq += from.sum_val_sq;
    into.min_err = std::min(into.min_err, from.min_err);
    into.max_err = std::max(into.max_err, from.max_err);
    into.sum_err += from.sum_err;
    into.sum_abs_err += from.sum_abs_err;
    into.sum_err_sq += from.sum_err_sq;
    into.min_pwr = std::min(into.min_pwr, from.min_pwr);
    into.max_pwr = std::max(into.max_pwr, from.max_pwr);
    into.sum_pwr_abs += from.sum_pwr_abs;
    into.sum_dec += from.sum_dec;
    into.sum_dec_sq += from.sum_dec_sq;
    into.sum_cross += from.sum_cross;
}

/// Pattern-2 totals layout: per order, slot indices 1 and 3 are maxima;
/// everything else merges by sum (mirrors the kernel's slot operators).
void merge_pattern2_totals(std::vector<double>& into, const std::vector<double>& from) {
    if (into.empty()) {
        into = from;
        return;
    }
    for (std::size_t s = 0; s < std::min(into.size(), from.size()); ++s) {
        const std::size_t base = s < 14 ? s % 7 : 99;
        if (base == 1 || base == 3) {
            into[s] = std::max(into[s], from[s]);
        } else {
            into[s] += from[s];
        }
    }
}

}  // namespace

std::vector<std::size_t> slab_bounds(std::size_t extent, std::size_t parts) {
    std::vector<std::size_t> bounds;
    bounds.reserve(parts + 1);
    for (std::size_t d = 0; d <= parts; ++d) {
        bounds.push_back(extent * d / parts);
    }
    return bounds;
}

MultiGpuResult assess_multigpu(std::span<vgpu::Device> devices, const zc::Tensor3f& orig,
                               const zc::Tensor3f& dec, const zc::MetricsConfig& cfg) {
    MultiGpuResult result;
    const std::size_t num_dev = devices.size();
    if (num_dev == 0 || orig.size() == 0 || orig.size() != dec.size()) return result;
    const zc::Dims3 dims = orig.dims();

    std::vector<std::size_t> record_start(num_dev);
    for (std::size_t d = 0; d < num_dev; ++d) {
        record_start[d] = devices[d].profiler().records().size();
    }

    bool have_moments = false;
    zc::ErrorMoments moments;

    if (cfg.pattern1) {
        const auto bounds = slab_bounds(dims.l, num_dev);
        struct DeviceSlab {
            std::unique_ptr<vgpu::DeviceBuffer<float>> d_orig, d_dec;
            zc::Dims3 slab_dims;
            bool active = false;
        };
        std::vector<DeviceSlab> slabs(num_dev);
        zc::ReductionMoments merged;
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (bounds[d + 1] <= bounds[d]) continue;
            const zc::Field so = slice_z(orig, bounds[d], bounds[d + 1]);
            const zc::Field sd = slice_z(dec, bounds[d], bounds[d + 1]);
            slabs[d].slab_dims = so.dims();
            slabs[d].d_orig =
                std::make_unique<vgpu::DeviceBuffer<float>>(devices[d], so.data());
            slabs[d].d_dec = std::make_unique<vgpu::DeviceBuffer<float>>(devices[d], sd.data());
            slabs[d].active = true;
            Pattern1Options opt;
            opt.histograms = false;
            const auto r = pattern1_fused_device(devices[d], *slabs[d].d_orig,
                                                 *slabs[d].d_dec, slabs[d].slab_dims, cfg, opt);
            merge_moments(merged, r.moments);
        }
        // Allreduce of the per-device moments (modeled as host exchange).
        result.exchange_bytes += num_dev * 2 * sizeof(zc::ReductionMoments);
        zc::finalize_reduction(merged, result.report.reduction);
        moments.mean = result.report.reduction.avg_err;
        moments.var = std::max(0.0, result.report.reduction.mse -
                                        moments.mean * moments.mean);
        have_moments = true;

        // Second pass: histograms against the global ranges.
        const Pattern1Ranges ranges{merged.min_err, merged.max_err, merged.min_pwr,
                                    merged.max_pwr, merged.min_val, merged.max_val};
        const int bins = std::max(1, cfg.pdf_bins);
        std::vector<double> hist(static_cast<std::size_t>(bins) * 3, 0.0);
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (!slabs[d].active) continue;
            Pattern1Options opt;
            opt.reductions = false;
            opt.fixed_ranges = &ranges;
            const auto r = pattern1_fused_device(devices[d], *slabs[d].d_orig,
                                                 *slabs[d].d_dec, slabs[d].slab_dims, cfg, opt);
            for (std::size_t b = 0; b < hist.size(); ++b) hist[b] += r.raw_hist[b];
        }
        result.exchange_bytes += num_dev * hist.size() * sizeof(double);

        auto& red = result.report.reduction;
        red.err_pdf.assign(hist.begin(), hist.begin() + bins);
        red.pwr_err_pdf.assign(hist.begin() + bins, hist.begin() + 2 * bins);
        red.err_pdf_min = merged.min_err;
        red.err_pdf_max = merged.max_err;
        red.pwr_err_pdf_min = merged.min_pwr;
        red.pwr_err_pdf_max = merged.max_pwr;
        const double inv_n = 1.0 / static_cast<double>(merged.n);
        double entropy = 0.0;
        for (int b = 0; b < bins; ++b) {
            red.err_pdf[static_cast<std::size_t>(b)] *= inv_n;
            red.pwr_err_pdf[static_cast<std::size_t>(b)] *= inv_n;
            const double pv = hist[static_cast<std::size_t>(2 * bins + b)] * inv_n;
            if (pv > 0) entropy -= pv * std::log2(pv);
        }
        red.entropy = entropy;
    }

    if (cfg.pattern2) {
        if (!have_moments) {
            // Per-device moments over disjoint slabs, merged via raw sums.
            const auto bounds = slab_bounds(dims.l, num_dev);
            double sum = 0, sum_sq = 0;
            for (std::size_t d = 0; d < num_dev; ++d) {
                if (bounds[d + 1] <= bounds[d]) continue;
                const zc::Field so = slice_z(orig, bounds[d], bounds[d + 1]);
                const zc::Field sd = slice_z(dec, bounds[d], bounds[d + 1]);
                vgpu::DeviceBuffer<float> b_orig(devices[d], so.data());
                vgpu::DeviceBuffer<float> b_dec(devices[d], sd.data());
                const auto m = error_moments_device(devices[d], b_orig, b_dec, so.dims());
                const auto nd = static_cast<double>(so.size());
                sum += m.mean * nd;
                sum_sq += (m.var + m.mean * m.mean) * nd;
            }
            const auto n = static_cast<double>(orig.size());
            moments.mean = sum / n;
            moments.var = std::max(0.0, sum_sq / n - moments.mean * moments.mean);
            have_moments = true;
            result.exchange_bytes += num_dev * 2 * sizeof(double);
        }
        const std::size_t halo = static_cast<std::size_t>(
            std::clamp(cfg.autocorr_max_lag, 1, kPattern2MaxLag));
        const auto bounds = slab_bounds(dims.l, num_dev);
        std::vector<double> totals;
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (bounds[d + 1] <= bounds[d]) continue;
            const std::size_t lo = bounds[d] >= 1 ? bounds[d] - 1 : 0;
            const std::size_t hi = std::min(bounds[d + 1] + halo, dims.l);
            const zc::Field so = slice_z(orig, lo, hi);
            const zc::Field sd = slice_z(dec, lo, hi);
            vgpu::DeviceBuffer<float> b_orig(devices[d], so.data());
            vgpu::DeviceBuffer<float> b_dec(devices[d], sd.data());
            Pattern2Options opt;
            opt.sub.z_center_begin = bounds[d] - lo;
            opt.sub.z_center_end = bounds[d + 1] - lo;
            opt.sub.z_global_offset = lo;
            opt.sub.l_global = dims.l;
            const auto r = pattern2_fused_device(devices[d], b_orig, b_dec, so.dims(), cfg,
                                                 moments, opt);
            merge_pattern2_totals(totals, r.totals);
        }
        result.exchange_bytes += num_dev * totals.size() * sizeof(double);
        finalize_pattern2(totals, dims, cfg, moments, true, cfg.deriv_orders >= 2,
                          cfg.autocorr_max_lag > 0, result.report.stencil);
    }

    if (cfg.pattern3) {
        const auto s = static_cast<std::size_t>(std::max(cfg.ssim_step, 1));
        const std::size_t wy =
            zc::effective_window(dims.w, static_cast<std::size_t>(cfg.ssim_window));
        const std::size_t ny = (dims.w - wy) / s + 1;
        const auto rows = slab_bounds(ny, num_dev);
        double ssim_sum = 0;
        std::size_t windows = 0;
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (rows[d + 1] <= rows[d]) continue;
            const std::size_t y0 = rows[d] * s;
            const std::size_t y1 = std::min((rows[d + 1] - 1) * s + wy, dims.w);
            const zc::Field so = slice_y(orig, y0, y1);
            const zc::Field sd = slice_y(dec, y0, y1);
            vgpu::DeviceBuffer<float> b_orig(devices[d], so.data());
            vgpu::DeviceBuffer<float> b_dec(devices[d], sd.data());
            const auto r =
                pattern3_ssim_device(devices[d], b_orig, b_dec, so.dims(), cfg, {});
            ssim_sum += r.report.ssim * static_cast<double>(r.report.windows);
            windows += r.report.windows;
        }
        result.exchange_bytes += num_dev * 2 * sizeof(double);
        result.report.ssim.windows = windows;
        result.report.ssim.ssim =
            windows > 0 ? ssim_sum / static_cast<double>(windows) : 0.0;
    }

    result.per_device.resize(num_dev);
    for (std::size_t d = 0; d < num_dev; ++d) {
        vgpu::KernelStats agg;
        agg.name = "multigpu/device";
        agg.launches = 0;
        const auto& recs = devices[d].profiler().records();
        for (std::size_t i = record_start[d]; i < recs.size(); ++i) agg.merge(recs[i]);
        result.per_device[d] = agg;
    }
    return result;
}

}  // namespace cuzc::cuzc
