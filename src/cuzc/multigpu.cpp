#include "multigpu.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cmath>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "pattern1.hpp"
#include "pattern2.hpp"
#include "pattern3.hpp"
#include "zc/ssim.hpp"

namespace cuzc::cuzc {

namespace {

void merge_moments(zc::ReductionMoments& into, const zc::ReductionMoments& from) {
    if (from.n == 0) return;
    if (into.n == 0) {
        into = from;
        return;
    }
    into.n += from.n;
    into.min_val = std::min(into.min_val, from.min_val);
    into.max_val = std::max(into.max_val, from.max_val);
    into.sum_val += from.sum_val;
    into.sum_val_sq += from.sum_val_sq;
    into.min_err = std::min(into.min_err, from.min_err);
    into.max_err = std::max(into.max_err, from.max_err);
    into.sum_err += from.sum_err;
    into.sum_abs_err += from.sum_abs_err;
    into.sum_err_sq += from.sum_err_sq;
    into.min_pwr = std::min(into.min_pwr, from.min_pwr);
    into.max_pwr = std::max(into.max_pwr, from.max_pwr);
    into.sum_pwr_abs += from.sum_pwr_abs;
    into.sum_dec += from.sum_dec;
    into.sum_dec_sq += from.sum_dec_sq;
    into.sum_cross += from.sum_cross;
}

/// Per-device slab plan plus the kernel outputs that the caller merges in
/// device order after the workers join.
struct DeviceTask {
    bool z_active = false;  ///< owns z-slices (pattern 1 and/or 2)
    bool y_active = false;  ///< owns pattern-3 window rows
    std::size_t z0 = 0, z1 = 0;  ///< owned centre z-slices
    std::size_t lo = 0, hi = 0;  ///< resident slab incl. pattern-2 halo
    std::size_t y0 = 0, y1 = 0;  ///< pattern-3 y-slab
    zc::Dims3 slab_dims{};
    std::unique_ptr<vgpu::DeviceBuffer<float>> d_orig, d_dec;
    Pattern1Result p1_reduce;
    Pattern1Result p1_hist;
    Pattern2Result p2;
    Pattern3Result p3;
    std::exception_ptr error;
};

}  // namespace

std::vector<std::size_t> slab_bounds(std::size_t extent, std::size_t parts) {
    std::vector<std::size_t> bounds;
    bounds.reserve(parts + 1);
    for (std::size_t d = 0; d <= parts; ++d) {
        bounds.push_back(extent * d / parts);
    }
    return bounds;
}

zc::Field slice_z(const zc::Tensor3f& f, std::size_t z0, std::size_t z1) {
    const auto& d = f.dims();
    const std::size_t zn = z1 - z0;
    zc::Field out(zc::Dims3{d.h, d.w, zn});
    if (zn == 0 || d.h * d.w == 0) return out;
    const float* src = f.data().data();
    float* dst = out.data().data();
    // z is the contiguous axis: each (x, y) row is one memcpy run.
    for (std::size_t x = 0; x < d.h; ++x) {
        for (std::size_t y = 0; y < d.w; ++y) {
            std::memcpy(dst, src + (x * d.w + y) * d.l + z0, zn * sizeof(float));
            dst += zn;
        }
    }
    return out;
}

zc::Field slice_y(const zc::Tensor3f& f, std::size_t y0, std::size_t y1) {
    const auto& d = f.dims();
    const std::size_t yn = y1 - y0;
    zc::Field out(zc::Dims3{d.h, yn, d.l});
    const std::size_t run = yn * d.l;
    if (run == 0 || d.h == 0) return out;
    const float* src = f.data().data();
    float* dst = out.data().data();
    // For fixed x the whole (y, z) sub-plane is contiguous.
    for (std::size_t x = 0; x < d.h; ++x) {
        std::memcpy(dst, src + (x * d.w + y0) * d.l, run * sizeof(float));
        dst += run;
    }
    return out;
}

void merge_pattern2_totals(std::vector<double>& into, const std::vector<double>& from) {
    if (into.empty()) {
        into = from;
        return;
    }
    if (into.size() != from.size()) {
        // A silent min-size merge would drop trailing autocorrelation lags;
        // slabs of one domain must always agree on the totals layout.
        throw std::invalid_argument("merge_pattern2_totals: slab totals layout mismatch (" +
                                    std::to_string(into.size()) + " vs " +
                                    std::to_string(from.size()) + " slots)");
    }
    for (std::size_t s = 0; s < into.size(); ++s) {
        const std::size_t base = s < 14 ? s % 7 : 99;
        if (base == 1 || base == 3) {
            into[s] = std::max(into[s], from[s]);
        } else {
            into[s] += from[s];
        }
    }
}

MultiGpuResult assess_multigpu(std::span<vgpu::Device* const> devices, const zc::Tensor3f& orig,
                               const zc::Tensor3f& dec, const zc::MetricsConfig& cfg,
                               const MultiGpuOptions& opt) {
    MultiGpuResult result;
    result.pattern1.name = "cuzc/pattern1";
    result.pattern2.name = "cuzc/pattern2";
    result.pattern3.name = "cuzc/pattern3";
    result.pattern1.launches = result.pattern2.launches = result.pattern3.launches = 0;
    const std::size_t num_dev = devices.size();
    if (num_dev == 0 || orig.size() == 0 || orig.size() != dec.size()) return result;
    const zc::Dims3 dims = orig.dims();
    const bool p1 = cfg.pattern1, p2 = cfg.pattern2, p3 = cfg.pattern3;

    std::vector<std::size_t> record_start(num_dev);
    for (std::size_t d = 0; d < num_dev; ++d) {
        record_start[d] = devices[d]->profiler().records().size();
    }

    // ---- Plan: one z-slab (shared by patterns 1+2, uploaded once) and one
    // pattern-3 y-slab per device.
    std::vector<DeviceTask> tasks(num_dev);
    if (p1 || p2) {
        const auto bounds = slab_bounds(dims.l, num_dev);
        const std::size_t halo =
            p2 ? static_cast<std::size_t>(std::clamp(cfg.autocorr_max_lag, 1, kPattern2MaxLag))
               : 0;
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (bounds[d + 1] <= bounds[d]) continue;
            auto& t = tasks[d];
            t.z_active = true;
            t.z0 = bounds[d];
            t.z1 = bounds[d + 1];
            t.lo = p2 && t.z0 >= 1 ? t.z0 - 1 : t.z0;
            t.hi = p2 ? std::min(t.z1 + halo, dims.l) : t.z1;
        }
    }
    if (p3) {
        const auto s = static_cast<std::size_t>(std::max(cfg.ssim_step, 1));
        const std::size_t wy =
            zc::effective_window(dims.w, static_cast<std::size_t>(cfg.ssim_window));
        const std::size_t ny = (dims.w - wy) / s + 1;
        const auto rows = slab_bounds(ny, num_dev);
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (rows[d + 1] <= rows[d]) continue;
            tasks[d].y_active = true;
            tasks[d].y0 = rows[d] * s;
            tasks[d].y1 = std::min((rows[d + 1] - 1) * s + wy, dims.w);
        }
    }

    // Mid-point state allreduced at the cross-device barrier: the merged
    // reduction moments and the global histogram ranges for pass 2.
    zc::ReductionMoments merged{};
    zc::ErrorMoments moments{};
    Pattern1Ranges ranges{};
    std::atomic<bool> abort{false};
    std::atomic<std::uint64_t> retries{0};

    // Run one slab stage with per-stage retry: a transient FaultError
    // re-runs only this device's stage (kernels are stateless; the upload
    // stage re-slices and re-uploads, which also resyncs corrupt uploads).
    const auto run_stage = [&](std::size_t d, const auto& stage) {
        if (tasks[d].error || abort.load(std::memory_order_acquire)) return;
        for (std::size_t attempt = 0;; ++attempt) {
            try {
                stage();
                return;
            } catch (const vgpu::FaultError& e) {
                if (!e.transient() || attempt >= opt.max_slab_retries) {
                    tasks[d].error = std::current_exception();
                    abort.store(true, std::memory_order_release);
                    return;
                }
                retries.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    opt.retry_backoff_s * static_cast<double>(std::uint64_t{1} << attempt)));
            } catch (...) {
                tasks[d].error = std::current_exception();
                abort.store(true, std::memory_order_release);
                return;
            }
        }
    };

    // Stage A: slice + upload the halo'd slab, then the pattern-1 reduction
    // pass over the centre z-range. The reduction pass also runs when only
    // pattern 2 is enabled — its raw sums yield the error moments pattern 2
    // normalizes with, replacing a separate moments kernel + upload.
    const auto stage_upload_reduce = [&](std::size_t d) {
        auto& t = tasks[d];
        vgpu::Device& dev = *devices[d];
        const zc::Field so = slice_z(orig, t.lo, t.hi);
        const zc::Field sd = slice_z(dec, t.lo, t.hi);
        t.slab_dims = so.dims();
        t.d_orig = std::make_unique<vgpu::DeviceBuffer<float>>(dev, so.data());
        t.d_dec = std::make_unique<vgpu::DeviceBuffer<float>>(dev, sd.data());
        Pattern1Options o;
        o.histograms = false;
        o.z_begin = t.z0 - t.lo;
        o.z_end = t.z1 - t.lo;
        t.p1_reduce = pattern1_fused_device(dev, *t.d_orig, *t.d_dec, t.slab_dims, cfg, o);
    };

    // Barrier completion: allreduce the per-device moments (deterministic
    // device order) and publish the global histogram ranges for stage B.
    const auto merge_mid = [&] {
        if (!(p1 || p2) || abort.load(std::memory_order_acquire)) return;
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (tasks[d].z_active) merge_moments(merged, tasks[d].p1_reduce.moments);
        }
        if (p1) {
            result.exchange_bytes += num_dev * 2 * sizeof(zc::ReductionMoments);
            zc::finalize_reduction(merged, result.report.reduction);
            moments.mean = result.report.reduction.avg_err;
            moments.var =
                std::max(0.0, result.report.reduction.mse - moments.mean * moments.mean);
            ranges = Pattern1Ranges{merged.min_err, merged.max_err, merged.min_pwr,
                                    merged.max_pwr, merged.min_val, merged.max_val};
        } else if (merged.n > 0) {
            const auto n = static_cast<double>(merged.n);
            moments.mean = merged.sum_err / n;
            moments.var = std::max(0.0, merged.sum_err_sq / n - moments.mean * moments.mean);
            result.exchange_bytes += num_dev * 2 * sizeof(double);
        }
    };

    // Stage B kernels reuse the resident slab from stage A.
    const auto stage_hist = [&](std::size_t d) {
        auto& t = tasks[d];
        Pattern1Options o;
        o.reductions = false;
        o.fixed_ranges = &ranges;
        o.z_begin = t.z0 - t.lo;
        o.z_end = t.z1 - t.lo;
        t.p1_hist = pattern1_fused_device(*devices[d], *t.d_orig, *t.d_dec, t.slab_dims, cfg, o);
    };
    const auto stage_p2 = [&](std::size_t d) {
        auto& t = tasks[d];
        Pattern2Options o;
        o.sub.z_center_begin = t.z0 - t.lo;
        o.sub.z_center_end = t.z1 - t.lo;
        o.sub.z_global_offset = t.lo;
        o.sub.l_global = dims.l;
        t.p2 = pattern2_fused_device(*devices[d], *t.d_orig, *t.d_dec, t.slab_dims, cfg, moments,
                                     o);
    };
    const auto stage_p3 = [&](std::size_t d) {
        auto& t = tasks[d];
        vgpu::Device& dev = *devices[d];
        const zc::Field so = slice_y(orig, t.y0, t.y1);
        const zc::Field sd = slice_y(dec, t.y0, t.y1);
        vgpu::DeviceBuffer<float> b_orig(dev, so.data());
        vgpu::DeviceBuffer<float> b_dec(dev, sd.data());
        t.p3 = pattern3_ssim_device(dev, b_orig, b_dec, so.dims(), cfg, {});
    };

    const auto stage_b = [&](std::size_t d) {
        if (tasks[d].z_active && p1) run_stage(d, [&] { stage_hist(d); });
        if (tasks[d].z_active && p2) run_stage(d, [&] { stage_p2(d); });
        if (tasks[d].y_active) run_stage(d, [&] { stage_p3(d); });
    };

    if (opt.parallel && num_dev > 1) {
        // One worker per device; each device's launches execute inline on
        // its worker (SerialScope) so devices overlap instead of queueing
        // on the shared block pool — results are worker-count invariant,
        // hence bit-identical to the sequential path below.
        std::barrier sync(static_cast<std::ptrdiff_t>(num_dev), merge_mid);
        {
            std::vector<std::jthread> workers;
            workers.reserve(num_dev);
            for (std::size_t d = 0; d < num_dev; ++d) {
                workers.emplace_back([&, d] {
                    vgpu::BlockScheduler::SerialScope serial;
                    if (tasks[d].z_active) run_stage(d, [&] { stage_upload_reduce(d); });
                    sync.arrive_and_wait();
                    stage_b(d);
                });
            }
        }  // jthreads join here
    } else {
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (tasks[d].z_active) run_stage(d, [&] { stage_upload_reduce(d); });
        }
        merge_mid();
        for (std::size_t d = 0; d < num_dev; ++d) stage_b(d);
    }

    result.slab_retries = retries.load(std::memory_order_relaxed);
    for (std::size_t d = 0; d < num_dev; ++d) {
        if (tasks[d].error) std::rethrow_exception(tasks[d].error);
    }

    // ---- Deterministic merges, ascending device order.
    if (p1) {
        const int bins = std::max(1, cfg.pdf_bins);
        std::vector<double> hist(static_cast<std::size_t>(bins) * 3, 0.0);
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (!tasks[d].z_active) continue;
            const auto& rh = tasks[d].p1_hist.raw_hist;
            for (std::size_t b = 0; b < hist.size(); ++b) hist[b] += rh[b];
        }
        result.exchange_bytes += num_dev * hist.size() * sizeof(double);

        auto& red = result.report.reduction;
        red.err_pdf.assign(hist.begin(), hist.begin() + bins);
        red.pwr_err_pdf.assign(hist.begin() + bins, hist.begin() + 2 * bins);
        red.err_pdf_min = merged.min_err;
        red.err_pdf_max = merged.max_err;
        red.pwr_err_pdf_min = merged.min_pwr;
        red.pwr_err_pdf_max = merged.max_pwr;
        const double inv_n = 1.0 / static_cast<double>(merged.n);
        double entropy = 0.0;
        for (int b = 0; b < bins; ++b) {
            red.err_pdf[static_cast<std::size_t>(b)] *= inv_n;
            red.pwr_err_pdf[static_cast<std::size_t>(b)] *= inv_n;
            const double pv = hist[static_cast<std::size_t>(2 * bins + b)] * inv_n;
            if (pv > 0) entropy -= pv * std::log2(pv);
        }
        red.entropy = entropy;
    }

    if (p2) {
        std::vector<double> totals;
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (tasks[d].z_active) merge_pattern2_totals(totals, tasks[d].p2.totals);
        }
        result.exchange_bytes += num_dev * totals.size() * sizeof(double);
        finalize_pattern2(totals, dims, cfg, moments, true, cfg.deriv_orders >= 2,
                          cfg.autocorr_max_lag > 0, result.report.stencil);
    }

    if (p3) {
        double ssim_sum = 0;
        std::size_t windows = 0;
        for (std::size_t d = 0; d < num_dev; ++d) {
            if (!tasks[d].y_active) continue;
            ssim_sum +=
                tasks[d].p3.report.ssim * static_cast<double>(tasks[d].p3.report.windows);
            windows += tasks[d].p3.report.windows;
        }
        result.exchange_bytes += num_dev * 2 * sizeof(double);
        result.report.ssim.windows = windows;
        result.report.ssim.ssim =
            windows > 0 ? ssim_sum / static_cast<double>(windows) : 0.0;
    }

    // ---- Profiles: per-device aggregates plus per-pattern aggregates.
    // When pattern 1 is disabled, its reduction pass plays the moments role
    // for pattern 2, so those records charge to pattern 2.
    result.per_device.resize(num_dev);
    for (std::size_t d = 0; d < num_dev; ++d) {
        vgpu::KernelStats agg;
        agg.name = "multigpu/device";
        agg.launches = 0;
        const auto& recs = devices[d]->profiler().records();
        for (std::size_t i = record_start[d]; i < recs.size(); ++i) {
            agg.merge(recs[i]);
            const std::string& nm = recs[i].name;
            if (nm == "cuzc/pattern3") {
                result.pattern3.merge(recs[i]);
            } else if (nm == "cuzc/pattern2" || nm == "cuzc/moments" ||
                       (nm == "cuzc/pattern1" && !p1)) {
                result.pattern2.merge(recs[i]);
            } else {
                result.pattern1.merge(recs[i]);
            }
        }
        result.per_device[d] = agg;
    }
    return result;
}

MultiGpuResult assess_multigpu(std::span<vgpu::Device> devices, const zc::Tensor3f& orig,
                               const zc::Tensor3f& dec, const zc::MetricsConfig& cfg,
                               const MultiGpuOptions& opt) {
    std::vector<vgpu::Device*> ptrs;
    ptrs.reserve(devices.size());
    for (auto& d : devices) ptrs.push_back(&d);
    return assess_multigpu(std::span<vgpu::Device* const>(ptrs), orig, dec, cfg, opt);
}

}  // namespace cuzc::cuzc
