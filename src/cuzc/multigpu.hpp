#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coordinator.hpp"
#include "vgpu/vgpu.hpp"
#include "zc/metrics_config.hpp"
#include "zc/report.hpp"
#include "zc/tensor.hpp"

namespace cuzc::cuzc {

/// Multi-GPU cuZ-Checker — the extension the paper names as future work
/// ("extend cuZ-Checker to a multi-node multi-GPU environment ... with
/// fine-grained design of inter-GPU synchronization and communication").
///
/// Decomposition, per pattern:
///  * pattern 1 splits the domain along z into disjoint slabs; per-device
///    reductions are allreduced on the host (modeling NCCL), and the
///    histogram phase re-runs against the global min/max ranges;
///  * pattern 2 splits along z with one-sided halo slabs (max(lag, 1)
///    slices high, 1 slice low) so stencils and lagged products near slab
///    seams read real neighbour data; each device owns a disjoint set of
///    centre slices and the raw accumulator totals merge by sum/max;
///  * pattern 3 splits the y-window rows across devices (window rows are
///    independent), each device receiving the y-slab its windows cover;
///    local SSIM sums and window counts merge by addition.
struct MultiGpuResult {
    zc::AssessmentReport report;
    /// Aggregated kernel profile of each device (index = device).
    std::vector<vgpu::KernelStats> per_device;
    /// Host<->device bytes moved for partial exchange (the allreduce
    /// traffic; slab distribution is counted by each device's h2d counter).
    std::uint64_t exchange_bytes = 0;
};

[[nodiscard]] MultiGpuResult assess_multigpu(std::span<vgpu::Device> devices,
                                             const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                                             const zc::MetricsConfig& cfg);

/// z-slab boundaries for splitting `extent` across `parts` devices:
/// device d owns [bounds[d], bounds[d+1]).
[[nodiscard]] std::vector<std::size_t> slab_bounds(std::size_t extent, std::size_t parts);

}  // namespace cuzc::cuzc
