#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coordinator.hpp"
#include "vgpu/vgpu.hpp"
#include "zc/metrics_config.hpp"
#include "zc/report.hpp"
#include "zc/tensor.hpp"

namespace cuzc::cuzc {

/// Multi-GPU cuZ-Checker — the extension the paper names as future work
/// ("extend cuZ-Checker to a multi-node multi-GPU environment ... with
/// fine-grained design of inter-GPU synchronization and communication").
///
/// Decomposition, per pattern:
///  * pattern 1 splits the domain along z into disjoint slabs; per-device
///    reductions are allreduced on the host (modeling NCCL), and the
///    histogram phase re-runs against the global min/max ranges;
///  * pattern 2 splits along z with one-sided halo slabs (max(lag, 1)
///    slices high, 1 slice low) so stencils and lagged products near slab
///    seams read real neighbour data; each device owns a disjoint set of
///    centre slices and the raw accumulator totals merge by sum/max;
///  * pattern 3 splits the y-window rows across devices (window rows are
///    independent), each device receiving the y-slab its windows cover;
///    local SSIM sums and window counts merge by addition.
///
/// Execution: each device's slab pipeline (slice -> upload -> kernels) runs
/// on its own std::jthread when `MultiGpuOptions::parallel` is set. Patterns
/// 1 and 2 share one halo'd resident slab per device (uploaded once);
/// pattern 1's reduction and histogram passes bracket a single cross-device
/// barrier where the global min/max ranges are allreduced. All merges
/// happen in ascending device order on one thread, so results and per-device
/// profiles are bit-identical to the sequential path (the block scheduler's
/// partition is worker-count invariant).
struct MultiGpuResult {
    zc::AssessmentReport report;
    /// Aggregated kernel profile of each device (index = device).
    std::vector<vgpu::KernelStats> per_device;
    /// Per-pattern kernel profiles aggregated across devices (the serve
    /// layer records these in its per-request spans).
    vgpu::KernelStats pattern1, pattern2, pattern3;
    /// Host<->device bytes moved for partial exchange (the allreduce
    /// traffic; slab distribution is counted by each device's h2d counter).
    std::uint64_t exchange_bytes = 0;
    /// Slab-stage retries performed after transient injected faults.
    std::uint64_t slab_retries = 0;
};

struct MultiGpuOptions {
    /// Run one worker thread per device; false executes the identical
    /// pipeline on the caller thread, device by device (same results).
    bool parallel = true;
    /// Per-slab-stage retries allowed on a transient vgpu::FaultError
    /// before the whole assessment fails. A retry re-runs only the failed
    /// device's stage (re-slice + re-upload for the upload stage; kernels
    /// are stateless and simply rerun).
    std::size_t max_slab_retries = 0;
    /// Base backoff between slab retry attempts (doubles per attempt).
    double retry_backoff_s = 100e-6;
};

[[nodiscard]] MultiGpuResult assess_multigpu(std::span<vgpu::Device* const> devices,
                                             const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                                             const zc::MetricsConfig& cfg,
                                             const MultiGpuOptions& opt = {});

[[nodiscard]] MultiGpuResult assess_multigpu(std::span<vgpu::Device> devices,
                                             const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                                             const zc::MetricsConfig& cfg,
                                             const MultiGpuOptions& opt = {});

/// z-slab boundaries for splitting `extent` across `parts` devices:
/// device d owns [bounds[d], bounds[d+1]).
[[nodiscard]] std::vector<std::size_t> slab_bounds(std::size_t extent, std::size_t parts);

/// Merge pattern-2 raw accumulator totals: per order, slot indices 1 and 3
/// are maxima; everything else merges by sum (mirrors the kernel's slot
/// operators). Throws std::invalid_argument if the slabs disagree on the
/// totals layout — a silent min-size merge would drop trailing lags.
void merge_pattern2_totals(std::vector<double>& into, const std::vector<double>& from);

/// Copy a z-slab [z0, z1) of a field (z is the contiguous axis, so each
/// (x, y) row contributes one contiguous memcpy run).
[[nodiscard]] zc::Field slice_z(const zc::Tensor3f& f, std::size_t z0, std::size_t z1);

/// Copy a y-slab [y0, y1) of a field (for fixed x, the (y, z) plane rows
/// are one contiguous run).
[[nodiscard]] zc::Field slice_y(const zc::Tensor3f& f, std::size_t y0, std::size_t y1);

}  // namespace cuzc::cuzc
