#include "pattern3.hpp"

#include <algorithm>
#include <cmath>

#include "slot_reduce.hpp"
#include "zc/ssim.hpp"

namespace cuzc::cuzc {

namespace {

using vgpu::BlockCtx;
using vgpu::Launch;
using vgpu::ThreadCtx;
using vgpu::WarpCtx;

// Per-thread register slots.
enum Slot : std::uint32_t {
    kD1, kD2,                                  // current slice values
    kMin1, kMax1, kSum1, kSumSq1,              // x-strip reductions, original
    kMin2, kMax2, kSum2, kSumSq2,              // x-strip reductions, decompressed
    kCross,                                    // x-strip cross sum
    kSsimSum, kWinCount,                       // per-owner outputs
    kNumSlots,
};
constexpr std::uint32_t kStripBase = kMin1;
constexpr std::uint32_t kStripVals = 9;

}  // namespace

Pattern3Result pattern3_ssim_device(vgpu::Device& dev, vgpu::DeviceBuffer<float>& d_orig,
                                    vgpu::DeviceBuffer<float>& d_dec, const zc::Dims3& dims,
                                    const zc::MetricsConfig& cfg, const Pattern3Options& opt) {
    Pattern3Result result;
    const std::size_t h = dims.h, wd = dims.w, l = dims.l;
    if (dims.volume() == 0 || cfg.ssim_window <= 0 || cfg.ssim_step <= 0) return result;

    const auto wx = static_cast<std::uint32_t>(
        zc::effective_window(h, static_cast<std::size_t>(cfg.ssim_window)));
    const auto wy = static_cast<std::uint32_t>(
        zc::effective_window(wd, static_cast<std::size_t>(cfg.ssim_window)));
    const auto wz = static_cast<std::uint32_t>(
        zc::effective_window(l, static_cast<std::size_t>(cfg.ssim_window)));
    const auto s = static_cast<std::uint32_t>(cfg.ssim_step);
    if (wx > vgpu::kWarpSize) {
        // One warp cannot cover a window plus its shuffle sources; the paper
        // assumes wsize <= warpSize (its evaluation uses 8).
        return result;
    }

    const auto ny_win = static_cast<std::uint32_t>((wd - wy) / s + 1);
    const char* name = opt.use_fifo ? "cuzc/pattern3" : "mozc/ssim";
    const vgpu::LaunchConfig lcfg{name, vgpu::Dim3{ny_win, 1, 1}, vgpu::Dim3{32, wy, 1}};

    vgpu::DeviceBuffer<double> d_part(dev, std::size_t{ny_win} * 2);

    // Window x-positions served by one warp sweep (paper: xNum = warpSize -
    // wsize + step), rounded to the step grid; sweeps advance by the number
    // of covered positions times the step.
    const std::uint32_t owners_per_sweep = (vgpu::kWarpSize - wx) / s + 1;
    const std::uint32_t sweep_adv = owners_per_sweep * s;

    vgpu::KernelStats& stats = vgpu::launch(dev, lcfg, [&](Launch& lnch, BlockCtx& blk) {
        auto dorig = lnch.span(d_orig);
        auto ddec = lnch.span(d_dec);
        auto dpart = lnch.span(d_part);

        // Shared memory: per-(lane,row) strip results of the current slice,
        // plus the FIFO ring of per-slice column reductions (Fig. 8).
        auto strips =
            blk.shared().alloc<double>(std::size_t{vgpu::kWarpSize} * wy * kStripVals);
        auto fifo = blk.shared().alloc<double>(std::size_t{vgpu::kWarpSize} * wz * kStripVals);

        auto reg = blk.make_regs<double>(kNumSlots);
        const std::size_t y0 = std::size_t{blk.block_idx().x} * s;

        const auto is_owner_lane = [&](std::uint32_t tidx, std::size_t i) {
            return tidx % s == 0 && tidx + wx <= vgpu::kWarpSize && i + tidx + wx <= h;
        };

        // Load slice k, reduce along x via shuffles, stage per-row strips,
        // then fold rows (the shared-memory y reduction) into the FIFO slot.
        const auto process_slice = [&](std::size_t i, std::size_t k, std::uint32_t fifo_slot) {
            blk.for_each_thread([&](ThreadCtx& t) {
                const std::size_t x = i + t.tid.x;
                const std::size_t y = y0 + t.tid.y;
                const bool valid = x < h;
                const std::size_t idx = (x * wd + y) * l + k;
                reg(t, kD1) = valid ? dorig.ld(idx) : 0.0;
                reg(t, kD2) = valid ? ddec.ld(idx) : 0.0;
                reg(t, kMin1) = reg(t, kMax1) = reg(t, kSum1) = reg(t, kD1);
                reg(t, kSumSq1) = reg(t, kD1) * reg(t, kD1);
                reg(t, kMin2) = reg(t, kMax2) = reg(t, kSum2) = reg(t, kD2);
                reg(t, kSumSq2) = reg(t, kD2) * reg(t, kD2);
                reg(t, kCross) = reg(t, kD1) * reg(t, kD2);
                blk.add_iters(1);
            });
            // Ghost-region sharing along x: every lane accumulates its
            // wx-wide window from neighbouring lanes' registers.
            blk.for_each_warp([&](WarpCtx& w) {
                for (std::uint32_t off = 1; off < wx; ++off) {
                    const auto g1 = w.shfl_down(reg, kD1, off);
                    const auto g2 = w.shfl_down(reg, kD2, off);
                    for (std::uint32_t lane = 0; lane < w.active_lanes(); ++lane) {
                        const std::uint32_t t = w.base_linear() + lane;
                        reg.at(t, kMin1) = std::min(reg.at(t, kMin1), g1[lane]);
                        reg.at(t, kMax1) = std::max(reg.at(t, kMax1), g1[lane]);
                        reg.at(t, kSum1) += g1[lane];
                        reg.at(t, kSumSq1) += g1[lane] * g1[lane];
                        reg.at(t, kMin2) = std::min(reg.at(t, kMin2), g2[lane]);
                        reg.at(t, kMax2) = std::max(reg.at(t, kMax2), g2[lane]);
                        reg.at(t, kSum2) += g2[lane];
                        reg.at(t, kSumSq2) += g2[lane] * g2[lane];
                        reg.at(t, kCross) += g1[lane] * g2[lane];
                    }
                }
            });
            blk.for_each_thread([&](ThreadCtx& t) {
                blk.add_ops(std::uint64_t{wx - 1} * 12 + 8);
                for (std::uint32_t v = 0; v < kStripVals; ++v) {
                    strips.st((std::size_t{t.tid.y} * vgpu::kWarpSize + t.tid.x) * kStripVals + v,
                              reg(t, kStripBase + v));
                }
            });
            // y reduction: row 0's owner lanes fold the wy rows of their
            // column and deposit the per-slice result into the FIFO ring.
            blk.for_each_thread([&](ThreadCtx& t) {
                if (t.tid.y != 0 || !is_owner_lane(t.tid.x, i)) return;
                double col[kStripVals];
                for (std::uint32_t v = 0; v < kStripVals; ++v) {
                    col[v] = v == kMin1 - kStripBase || v == kMin2 - kStripBase
                                 ? std::numeric_limits<double>::infinity()
                                 : (v == kMax1 - kStripBase || v == kMax2 - kStripBase
                                        ? -std::numeric_limits<double>::infinity()
                                        : 0.0);
                }
                for (std::uint32_t r = 0; r < wy; ++r) {
                    for (std::uint32_t v = 0; v < kStripVals; ++v) {
                        const double sv =
                            strips.ld((std::size_t{r} * vgpu::kWarpSize + t.tid.x) * kStripVals + v);
                        if (v == kMin1 - kStripBase || v == kMin2 - kStripBase) {
                            col[v] = std::min(col[v], sv);
                        } else if (v == kMax1 - kStripBase || v == kMax2 - kStripBase) {
                            col[v] = std::max(col[v], sv);
                        } else {
                            col[v] += sv;
                        }
                    }
                }
                for (std::uint32_t v = 0; v < kStripVals; ++v) {
                    fifo.st((std::size_t{fifo_slot} * vgpu::kWarpSize + t.tid.x) * kStripVals + v,
                            col[v]);
                }
            });
            // Divergence cost: only row 0's owner lanes execute the fold,
            // but the __syncthreads bracketing the phase keeps every warp
            // of the block resident and idle — charge whole-block slots.
            blk.add_ops((std::uint64_t{wy} * kStripVals + kStripVals) * blk.num_threads());
        };

        // Fold the FIFO ring into full-window sums and mix the local SSIM.
        const auto fold_windows = [&](std::size_t i) {
            blk.for_each_thread([&](ThreadCtx& t) {
                if (t.tid.y != 0 || !is_owner_lane(t.tid.x, i)) return;
                zc::WindowSums a{}, b{};
                zc::WindowCross c{};
                a.min = std::numeric_limits<double>::infinity();
                a.max = -a.min;
                b.min = a.min;
                b.max = a.max;
                for (std::uint32_t slot = 0; slot < wz; ++slot) {
                    const auto base =
                        (std::size_t{slot} * vgpu::kWarpSize + t.tid.x) * kStripVals;
                    a.min = std::min(a.min, fifo.ld(base + 0));
                    a.max = std::max(a.max, fifo.ld(base + 1));
                    a.sum += fifo.ld(base + 2);
                    a.sum_sq += fifo.ld(base + 3);
                    b.min = std::min(b.min, fifo.ld(base + 4));
                    b.max = std::max(b.max, fifo.ld(base + 5));
                    b.sum += fifo.ld(base + 6);
                    b.sum_sq += fifo.ld(base + 7);
                    c.sum_xy += fifo.ld(base + 8);
                }
                reg(t, kSsimSum) +=
                    zc::mix_local_ssim(a, b, c, std::size_t{wx} * wy * wz);
                reg(t, kWinCount) += 1.0;
            });
            // Same block-slot charging as the y reduction: the FIFO fold and
            // mix run on xNum owner lanes of warp 0 while the block waits.
            blk.add_ops((std::uint64_t{wz} * kStripVals + 40) * blk.num_threads());
        };

        for (std::size_t i = 0; i + wx <= h; i += sweep_adv) {
            if (opt.use_fifo) {
                // Algorithm 3: every slice is read and reduced exactly once;
                // its column sums stream through the FIFO ring.
                for (std::size_t k = 0; k < l; ++k) {
                    process_slice(i, k, static_cast<std::uint32_t>(k % wz));
                    if (k + 1 >= wz && (k + 1 - wz) % s == 0) fold_windows(i);
                }
            } else {
                // moZC: each window position re-reads its wz slices.
                for (std::size_t k0 = 0; k0 + wz <= l; k0 += s) {
                    for (std::uint32_t kk = 0; kk < wz; ++kk) {
                        process_slice(i, k0 + kk, kk);
                    }
                    fold_windows(i);
                }
            }
        }

        block_reduce_slots(blk, reg, kNumSlots,
                           [](std::uint32_t) { return SlotOp::kSum; });
        blk.for_each_thread([&](ThreadCtx& t) {
            if (t.linear == 0) {
                dpart.st(std::size_t{blk.block_idx().x} * 2 + 0, reg(t, kSsimSum));
                dpart.st(std::size_t{blk.block_idx().x} * 2 + 1, reg(t, kWinCount));
            }
        });
    });
    stats.coalescing = kPattern3Coalescing;
    stats.serialization = kPattern3Serialization;
    result.stats = stats;

    const std::vector<double> part = d_part.download();
    double total = 0, count = 0;
    for (std::uint32_t b = 0; b < ny_win; ++b) {
        total += part[std::size_t{b} * 2 + 0];
        count += part[std::size_t{b} * 2 + 1];
    }
    result.report.windows = static_cast<std::size_t>(count);
    result.report.ssim = count > 0 ? total / count : 0.0;
    return result;
}

Pattern3Result pattern3_ssim(vgpu::Device& dev, const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                             const zc::MetricsConfig& cfg, const Pattern3Options& opt) {
    vgpu::DeviceBuffer<float> d_orig(dev, orig.data());
    vgpu::DeviceBuffer<float> d_dec(dev, dec.data());
    return pattern3_ssim_device(dev, d_orig, d_dec, orig.dims(), cfg, opt);
}

}  // namespace cuzc::cuzc
