#include "pattern3.hpp"

#include <algorithm>
#include <cmath>

#include "slot_reduce.hpp"
#include "vgpu/simd.hpp"
#include "zc/ssim.hpp"

namespace cuzc::cuzc {

namespace {

using vgpu::BlockCtx;
using vgpu::Launch;
using vgpu::ThreadCtx;
using vgpu::WarpCtx;

namespace simd = vgpu::simd;

// Per-thread register slots.
enum Slot : std::uint32_t {
    kD1, kD2,                                  // current slice values
    kMin1, kMax1, kSum1, kSumSq1,              // x-strip reductions, original
    kMin2, kMax2, kSum2, kSumSq2,              // x-strip reductions, decompressed
    kCross,                                    // x-strip cross sum
    kSsimSum, kWinCount,                       // per-owner outputs
    kNumSlots,
};
constexpr std::uint32_t kStripBase = kMin1;
constexpr std::uint32_t kStripVals = 9;
// The SIMD strip fold emits its slot-major output in exactly this window's
// slot order (min1 max1 sum1 sumsq1 min2 max2 sum2 sumsq2 cross).
static_assert(kStripVals == simd::kP3StripVals);
static_assert(kCross - kStripBase + 1 == kStripVals);

}  // namespace

Pattern3Result pattern3_ssim_device(vgpu::Device& dev, const vgpu::DeviceBuffer<float>& d_orig,
                                    const vgpu::DeviceBuffer<float>& d_dec, const zc::Dims3& dims,
                                    const zc::MetricsConfig& cfg, const Pattern3Options& opt) {
    Pattern3Result result;
    const std::size_t h = dims.h, wd = dims.w, l = dims.l;
    if (dims.volume() == 0 || cfg.ssim_window <= 0 || cfg.ssim_step <= 0) return result;

    const auto wx = static_cast<std::uint32_t>(
        zc::effective_window(h, static_cast<std::size_t>(cfg.ssim_window)));
    const auto wy = static_cast<std::uint32_t>(
        zc::effective_window(wd, static_cast<std::size_t>(cfg.ssim_window)));
    const auto wz = static_cast<std::uint32_t>(
        zc::effective_window(l, static_cast<std::size_t>(cfg.ssim_window)));
    const auto s = static_cast<std::uint32_t>(cfg.ssim_step);
    if (wx > vgpu::kWarpSize) {
        // One warp cannot cover a window plus its shuffle sources; the paper
        // assumes wsize <= warpSize (its evaluation uses 8).
        return result;
    }

    const auto ny_win = static_cast<std::uint32_t>((wd - wy) / s + 1);
    const char* name = opt.use_fifo ? "cuzc/pattern3" : "mozc/ssim";
    const vgpu::LaunchConfig lcfg{name, vgpu::Dim3{ny_win, 1, 1}, vgpu::Dim3{32, wy, 1}};

    vgpu::DeviceBuffer<double> d_part(dev, std::size_t{ny_win} * 2);

    // Window x-positions served by one warp sweep (paper: xNum = warpSize -
    // wsize + step), rounded to the step grid; sweeps advance by the number
    // of covered positions times the step.
    const std::uint32_t owners_per_sweep = (vgpu::kWarpSize - wx) / s + 1;
    const std::uint32_t sweep_adv = owners_per_sweep * s;

    const simd::Ops& lane_ops = simd::ops();
    vgpu::KernelStats& stats = vgpu::launch(dev, lcfg, [&](Launch& lnch, BlockCtx& blk) {
        auto dorig = lnch.span(d_orig);
        auto ddec = lnch.span(d_dec);
        auto dpart = lnch.span(d_part);

        // Shared memory: per-(lane,row) strip results of the current slice,
        // plus the FIFO ring of per-slice column reductions (Fig. 8).
        auto strips =
            blk.shared().alloc<double>(std::size_t{vgpu::kWarpSize} * wy * kStripVals);
        auto fifo = blk.shared().alloc<double>(std::size_t{vgpu::kWarpSize} * wz * kStripVals);

        auto reg = blk.make_regs<double>(kNumSlots);
        const std::size_t y0 = std::size_t{blk.block_idx().x} * s;

        const auto is_owner_lane = [&](std::uint32_t tidx, std::size_t i) {
            return tidx % s == 0 && tidx + wx <= vgpu::kWarpSize && i + tidx + wx <= h;
        };

        // Load slice k, reduce along x via shuffles, stage per-row strips,
        // then fold rows (the shared-memory y reduction) into the FIFO slot.
        const auto process_slice = [&](std::size_t i, std::size_t k, std::uint32_t fifo_slot) {
            // Exactly min(32, h-i) lanes per row are in bounds; each warp
            // gathers its row's strided slice column with one charged
            // `ld_lanes` call (same bytes as per-element ld).
            const std::size_t rows = std::min<std::size_t>(vgpu::kWarpSize, h - i);
            // Load, ghost-region sharing, and strip staging fused into one
            // warp pass: the wx-window fold only ever reads same-warp lanes
            // (warp w is row w of the block), so each lane's slice values go
            // into a warp-local lane vector and the SIMD strip fold runs the
            // off = 1..wx-1 shifted-lane sequence — the exact fold order of
            // the per-offset shuffle ladder, whose shuffle count is charged
            // in bulk.
            blk.for_each_warp([&](WarpCtx& w) {
                const std::uint32_t yrow = w.warp_id();
                const std::size_t y = y0 + yrow;
                const std::uint32_t lanes = w.active_lanes();
                w.add_shuffles(std::uint64_t{2} * (wx - 1) * lanes);
                double v1[vgpu::kWarpSize];
                double v2[vgpu::kWarpSize];
                const std::size_t stride_x = wd * l;
                const std::size_t idx0 = (i * wd + y) * l + k;
                dorig.ld_lanes(idx0, stride_x, rows, v1);
                ddec.ld_lanes(idx0, stride_x, rows, v2);
                std::fill(v1 + rows, v1 + lanes, 0.0);
                std::fill(v2 + rows, v2 + lanes, 0.0);
                double out[std::size_t{kStripVals} * vgpu::kWarpSize];
                lane_ops.p3_strip_fold(v1, v2, lanes, wx, out);
                double* srow = strips.st_bulk(std::size_t{yrow} * vgpu::kWarpSize * kStripVals,
                                              std::size_t{lanes} * kStripVals);
                for (std::uint32_t ln = 0; ln < lanes; ++ln) {
                    double* sp = srow + std::size_t{ln} * kStripVals;
                    for (std::uint32_t v = 0; v < kStripVals; ++v) {
                        sp[v] = out[std::size_t{v} * vgpu::kWarpSize + ln];
                    }
                }
            });
            blk.add_iters(blk.num_threads());
            blk.add_ops((std::uint64_t{wx - 1} * 12 + 8) * blk.num_threads());
            // y reduction: row 0's owner lanes fold the wy rows of their
            // column and deposit the per-slice result into the FIFO ring.
            // Only those lanes do work, so iterate them directly instead of
            // scanning the whole block (per-owner charges are unchanged).
            for (std::uint32_t ox = 0; ox + wx <= vgpu::kWarpSize; ox += s) {
                if (!is_owner_lane(ox, i)) continue;
                constexpr double kInf = std::numeric_limits<double>::infinity();
                double col[kStripVals] = {kInf, -kInf, 0.0, 0.0, kInf, -kInf, 0.0, 0.0, 0.0};
                const double* sp = strips.ld_footprint(std::size_t{wy} * kStripVals);
                for (std::uint32_t r = 0; r < wy; ++r) {
                    const double* row =
                        sp + (std::size_t{r} * vgpu::kWarpSize + ox) * kStripVals;
                    col[0] = std::min(col[0], row[0]);
                    col[1] = std::max(col[1], row[1]);
                    col[2] += row[2];
                    col[3] += row[3];
                    col[4] = std::min(col[4], row[4]);
                    col[5] = std::max(col[5], row[5]);
                    col[6] += row[6];
                    col[7] += row[7];
                    col[8] += row[8];
                }
                double* fp = fifo.st_bulk(
                    (std::size_t{fifo_slot} * vgpu::kWarpSize + ox) * kStripVals, kStripVals);
                for (std::uint32_t v = 0; v < kStripVals; ++v) fp[v] = col[v];
            }
            // Divergence cost: only row 0's owner lanes execute the fold,
            // but the __syncthreads bracketing the phase keeps every warp
            // of the block resident and idle — charge whole-block slots.
            blk.add_ops((std::uint64_t{wy} * kStripVals + kStripVals) * blk.num_threads());
        };

        // Fold the FIFO ring into full-window sums and mix the local SSIM.
        const auto fold_windows = [&](std::size_t i) {
            // As in the y reduction, only row 0's owner lanes participate
            // (lane ox is linear thread ox); iterate them directly.
            for (std::uint32_t ox = 0; ox + wx <= vgpu::kWarpSize; ox += s) {
                if (!is_owner_lane(ox, i)) continue;
                zc::WindowSums a{}, b{};
                zc::WindowCross c{};
                a.min = std::numeric_limits<double>::infinity();
                a.max = -a.min;
                b.min = a.min;
                b.max = a.max;
                const double* fp = fifo.ld_footprint(std::size_t{wz} * kStripVals);
                for (std::uint32_t slot = 0; slot < wz; ++slot) {
                    const double* ring =
                        fp + (std::size_t{slot} * vgpu::kWarpSize + ox) * kStripVals;
                    a.min = std::min(a.min, ring[0]);
                    a.max = std::max(a.max, ring[1]);
                    a.sum += ring[2];
                    a.sum_sq += ring[3];
                    b.min = std::min(b.min, ring[4]);
                    b.max = std::max(b.max, ring[5]);
                    b.sum += ring[6];
                    b.sum_sq += ring[7];
                    c.sum_xy += ring[8];
                }
                reg.at(ox, kSsimSum) +=
                    zc::mix_local_ssim(a, b, c, std::size_t{wx} * wy * wz);
                reg.at(ox, kWinCount) += 1.0;
            }
            // Same block-slot charging as the y reduction: the FIFO fold and
            // mix run on xNum owner lanes of warp 0 while the block waits.
            blk.add_ops((std::uint64_t{wz} * kStripVals + 40) * blk.num_threads());
        };

        for (std::size_t i = 0; i + wx <= h; i += sweep_adv) {
            if (opt.use_fifo) {
                // Algorithm 3: every slice is read and reduced exactly once;
                // its column sums stream through the FIFO ring.
                for (std::size_t k = 0; k < l; ++k) {
                    process_slice(i, k, static_cast<std::uint32_t>(k % wz));
                    if (k + 1 >= wz && (k + 1 - wz) % s == 0) fold_windows(i);
                }
            } else {
                // moZC: each window position re-reads its wz slices.
                for (std::size_t k0 = 0; k0 + wz <= l; k0 += s) {
                    for (std::uint32_t kk = 0; kk < wz; ++kk) {
                        process_slice(i, k0 + kk, kk);
                    }
                    fold_windows(i);
                }
            }
        }

        block_reduce_slots(blk, reg, kNumSlots,
                           [](std::uint32_t) { return SlotOp::kSum; });
        blk.for_each_thread([&](ThreadCtx& t) {
            if (t.linear == 0) {
                dpart.st(std::size_t{blk.block_idx().x} * 2 + 0, reg(t, kSsimSum));
                dpart.st(std::size_t{blk.block_idx().x} * 2 + 1, reg(t, kWinCount));
            }
        });
    });
    stats.coalescing = kPattern3Coalescing;
    stats.serialization = kPattern3Serialization;
    result.stats = stats;

    const std::vector<double> part = d_part.download();
    double total = 0, count = 0;
    for (std::uint32_t b = 0; b < ny_win; ++b) {
        total += part[std::size_t{b} * 2 + 0];
        count += part[std::size_t{b} * 2 + 1];
    }
    result.report.windows = static_cast<std::size_t>(count);
    result.report.ssim = count > 0 ? total / count : 0.0;
    return result;
}

Pattern3Result pattern3_ssim(vgpu::Device& dev, const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                             const zc::MetricsConfig& cfg, const Pattern3Options& opt) {
    vgpu::DeviceBuffer<float> d_orig(dev, orig.data());
    vgpu::DeviceBuffer<float> d_dec(dev, dec.data());
    return pattern3_ssim_device(dev, d_orig, d_dec, orig.dims(), cfg, opt);
}

}  // namespace cuzc::cuzc
