#include "pattern2.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "slot_reduce.hpp"
#include "zc/derivatives.hpp"

namespace cuzc::cuzc {

namespace {

using vgpu::BlockCtx;
using vgpu::Launch;
using vgpu::ThreadCtx;
namespace simd = vgpu::simd;

constexpr std::uint32_t kTile = 16;    // (x, y) tile side == blockDim.x/y
// z-thickness owned by one block: ssize - max stride (16 - 10), as in the
// paper's Algorithm 2 where adjacent cubes overlap by the stride. This is
// what ties the block count to the z-extent (Table II: Hurricane's l=100
// yields ~17 blocks for 80 SMs while NYX's l=512 yields ~86).
constexpr std::uint32_t kZChunk = 6;

// Accumulator slot layout: 7 per derivative order, then the element count,
// then one sum per autocorrelation lag.
enum DerivSlot : std::uint32_t {
    kSumO, kMaxO, kSumD, kMaxD, kSumSqDiff, kAxisO, kAxisD, kDerivSlots
};
constexpr std::uint32_t kCountSlot = 2 * kDerivSlots;
constexpr std::uint32_t kLagBase = kCountSlot + 1;

[[nodiscard]] SlotOp op_of_slot(std::uint32_t slot) {
    const std::uint32_t base = slot < kDerivSlots ? slot
                               : slot < 2 * kDerivSlots ? slot - kDerivSlots
                                                        : kCountSlot;
    if (slot < 2 * kDerivSlots && (base == kMaxO || base == kMaxD)) return SlotOp::kMax;
    return SlotOp::kSum;
}

}  // namespace

zc::ErrorMoments error_moments_device(vgpu::Device& dev, const vgpu::DeviceBuffer<float>& d_orig,
                                      const vgpu::DeviceBuffer<float>& d_dec, const zc::Dims3& dims) {
    const std::size_t n = dims.volume();
    vgpu::DeviceBuffer<double> d_out(dev, 2);
    constexpr std::uint32_t kThreads = 256;
    const std::uint32_t grid =
        static_cast<std::uint32_t>(std::min<std::size_t>(256, (n + kThreads - 1) / kThreads));
    vgpu::DeviceBuffer<double> d_part(dev, std::size_t{grid} * 2);

    const vgpu::LaunchConfig cfg{"cuzc/moments", vgpu::Dim3{grid, 1, 1},
                                 vgpu::Dim3{kThreads, 1, 1}};
    vgpu::CoopPhase partial = [&](Launch& l, BlockCtx& blk) {
        auto dorig = l.span(d_orig);
        auto ddec = l.span(d_dec);
        auto dpart = l.span(d_part);
        auto acc = blk.make_regs<double>(2);
        const std::uint64_t stride = std::uint64_t{grid} * kThreads;
        // Round-major grid-stride walk: each round bulk-loads the block's
        // contiguous chunk of both inputs, and thread t folds element
        // base + t — the same element sequence per thread as the
        // thread-major loop, with one charge per chunk instead of per
        // element.
        const simd::Ops& lane_ops = simd::ops();
        double es[kThreads], sq[kThreads];
        for (std::uint64_t base = std::uint64_t{blk.block_idx().x} * kThreads; base < n;
             base += stride) {
            const std::size_t count = std::min<std::uint64_t>(kThreads, n - base);
            const float* po = dorig.ld_bulk(base, count);
            const float* pd = ddec.ld_bulk(base, count);
            // Lane-engine fold of the chunk: thread t's element is lane t,
            // and the two register slots are interleaved per thread
            // (stride 2 in the register file).
            lane_ops.sub_cvt(es, pd, po, count);
            lane_ops.mul(sq, es, es, count);
            lane_ops.add_acc_strided(&acc.at(0, 0), 2, es, count);
            lane_ops.add_acc_strided(&acc.at(0, 1), 2, sq, count);
            blk.add_iters(count);
            blk.add_ops(std::uint64_t{count} * 5);
        }
        block_reduce_slots(blk, acc, 2, [](std::uint32_t) { return SlotOp::kSum; });
        blk.for_each_thread([&](ThreadCtx& t) {
            if (t.linear == 0) {
                dpart.st(blk.block_idx().x * 2 + 0, acc(t, 0));
                dpart.st(blk.block_idx().x * 2 + 1, acc(t, 1));
            }
        });
    };
    vgpu::CoopPhase finish = [&](Launch& l, BlockCtx& blk) {
        if (blk.block_idx().x != 0) return;
        auto dpart = l.span(d_part);
        auto dout = l.span(d_out);
        auto acc = blk.make_regs<double>(2);
        // Block 0 consumes the whole partial array; one bulk load charges
        // the same bytes as the per-element loads.
        const double* pp = dpart.ld_bulk(0, std::size_t{grid} * 2);
        blk.for_each_thread([&](ThreadCtx& t) {
            for (std::uint32_t b = t.linear; b < grid; b += blk.num_threads()) {
                acc(t, 0) += pp[std::size_t{b} * 2 + 0];
                acc(t, 1) += pp[std::size_t{b} * 2 + 1];
            }
        });
        block_reduce_slots(blk, acc, 2, [](std::uint32_t) { return SlotOp::kSum; });
        blk.for_each_thread([&](ThreadCtx& t) {
            if (t.linear == 0) {
                dout.st(0, acc(t, 0));
                dout.st(1, acc(t, 1));
            }
        });
    };
    vgpu::coop_launch(dev, cfg, {partial, finish});

    const auto sums = d_out.download();
    zc::ErrorMoments m;
    m.mean = sums[0] / static_cast<double>(n);
    m.var = std::max(0.0, sums[1] / static_cast<double>(n) - m.mean * m.mean);
    return m;
}

Pattern2Result pattern2_fused_device(vgpu::Device& dev, const vgpu::DeviceBuffer<float>& d_orig,
                                     const vgpu::DeviceBuffer<float>& d_dec, const zc::Dims3& dims,
                                     const zc::MetricsConfig& cfg,
                                     const zc::ErrorMoments& moments,
                                     const Pattern2Options& opt) {
    Pattern2Result result;
    const std::size_t h = dims.h, w = dims.w, l = dims.l;
    if (dims.volume() == 0) return result;

    const bool do_order1 = opt.order1;
    const bool do_order2 = opt.order2 && cfg.deriv_orders >= 2;
    const bool do_deriv = do_order1 || do_order2;
    // Subdomain (multi-device) context: global coordinates for boundary
    // predicates, local ownership window for centre accumulation.
    const std::size_t l_g = opt.sub.l_global != 0 ? opt.sub.l_global : l;
    const std::size_t z_off = opt.sub.z_global_offset;
    const std::size_t zc_begin = opt.sub.z_center_begin;
    const std::size_t zc_end = std::min(opt.sub.z_center_end, l);
    const auto lag_count = static_cast<std::uint32_t>(
        opt.autocorr ? std::clamp(cfg.autocorr_max_lag, 0, kPattern2MaxLag) : 0);
    const std::uint32_t nslots = kLagBase + lag_count;
    const std::uint32_t halo = std::max<std::uint32_t>(lag_count, 1);
    const std::uint32_t eh = kTile + halo;  // halo'd error-tile extent

    const auto grid = static_cast<std::uint32_t>((l + kZChunk - 1) / kZChunk);
    vgpu::DeviceBuffer<double> d_part(dev, std::size_t{grid} * nslots);
    vgpu::DeviceBuffer<float> d_der1_orig(dev, dims.volume());
    vgpu::DeviceBuffer<float> d_der1_dec(dev, dims.volume());

    // Interior ranges of the derivative metrics (must match the serial
    // reference exactly, including degenerate short axes).
    const zc::AxisRange rx = zc::interior(h, 1);
    const zc::AxisRange ry = zc::interior(w, 1);
    const zc::AxisRange rz = zc::interior(l_g, 1);
    const double err_mean = moments.mean;

    const vgpu::LaunchConfig lcfg{opt.name, vgpu::Dim3{grid, 1, 1},
                                  vgpu::Dim3{kTile, kTile, 1}};

    vgpu::KernelStats& stats = vgpu::launch(dev, lcfg, [&](Launch& lnch, BlockCtx& blk) {
        auto dorig = lnch.span(d_orig);
        auto ddec = lnch.span(d_dec);
        auto dpart = lnch.span(d_part);
        auto der_o = lnch.span(d_der1_orig);
        auto der_d = lnch.span(d_der1_dec);

        auto ehalo = blk.shared().alloc<double>(lag_count > 0 ? std::size_t{eh} * eh : 1);
        auto fifo = blk.shared().alloc<double>(
            lag_count > 0 ? std::size_t{halo + 1} * kTile * kTile : 1);
        auto tile_o =
            blk.shared().alloc<double>(do_deriv ? std::size_t{kTile + 2} * (kTile + 2) : 1);
        auto tile_d =
            blk.shared().alloc<double>(do_deriv ? std::size_t{kTile + 2} * (kTile + 2) : 1);

        auto acc = blk.make_regs<double>(nslots);
        // Per-thread accumulators live in a slot-major stack slab during the
        // tile walk so the lane engine sees contiguous lanes. A deriv or
        // autocorr "row" is fixed tid.x with tid.y varying, so the lane index
        // is the transposed tid.x*kTile + tid.y (not the linear id); the slab
        // is written back into the register file before the block reduction,
        // which keeps the reduction's fold order exactly the seed's.
        const simd::Ops& lane_ops = simd::ops();
        double slab[kLagBase + kPattern2MaxLag][std::size_t{kTile} * kTile];
        for (std::uint32_t s = 0; s < nslots; ++s) {
            std::fill_n(slab[s], std::size_t{kTile} * kTile, slot_identity(op_of_slot(s)));
        }

        const std::size_t z0 = std::size_t{blk.block_idx().x} * kZChunk;
        const std::size_t z1 = std::min<std::size_t>(z0 + kZChunk, l);
        const std::size_t z_end =
            lag_count > 0 ? std::min<std::size_t>(z1 + halo, l) : z1;

        const auto gidx = [&](std::size_t x, std::size_t y, std::size_t z) {
            return (x * w + y) * l + z;
        };
        // Per-lag bounds and the 1/valid weight depend only on the domain
        // shape; hoist them out of the per-thread lag loop.
        struct LagInfo {
            bool ax, ay, az, any;
            std::size_t x_lim, y_lim, z_lim;
            double inv_valid;
        };
        std::array<LagInfo, static_cast<std::size_t>(kPattern2MaxLag)> lag_tab{};
        for (std::uint32_t lag = 1; lag <= lag_count; ++lag) {
            const auto tau = static_cast<std::size_t>(lag);
            LagInfo& li = lag_tab[lag - 1];
            li.ax = h > tau;
            li.ay = w > tau;
            li.az = l_g > tau;
            const int valid = (li.ax ? 1 : 0) + (li.ay ? 1 : 0) + (li.az ? 1 : 0);
            li.any = valid > 0;
            li.inv_valid = li.any ? 1.0 / valid : 0.0;
            li.x_lim = li.ax ? h - tau : h;
            li.y_lim = li.ay ? w - tau : w;
            li.z_lim = li.az ? l_g - tau : l_g;
        }
        for (std::size_t tx0 = 0; tx0 < h; tx0 += kTile) {
            for (std::size_t ty0 = 0; ty0 < w; ty0 += kTile) {
                for (std::size_t z = z0; z < z_end; ++z) {
                    const bool is_center = z < z1;
                    // --- stage the halo'd error tile of the current slice.
                    // Collective store: the block writes every cell of the
                    // staged extent (zero-padded outside the domain), so the
                    // in-bounds loads of both inputs are charged as one
                    // footprint each and each ehalo row as one bulk store —
                    // the same bytes err_at's per-cell loads would charge.
                    if (lag_count > 0) {
                        const std::uint32_t stage_extent = is_center ? eh : kTile;
                        const std::size_t inb_x = std::min<std::size_t>(stage_extent, h - tx0);
                        const std::size_t inb_y = std::min<std::size_t>(stage_extent, w - ty0);
                        const float* po = dorig.ld_footprint(inb_x * inb_y);
                        const float* pd = ddec.ld_footprint(inb_x * inb_y);
                        for (std::uint32_t dx = 0; dx < stage_extent; ++dx) {
                            double* row = ehalo.st_bulk(std::size_t{dx} * eh, stage_extent);
                            const std::size_t gx = tx0 + dx;
                            if (gx >= h) {
                                std::fill_n(row, stage_extent, 0.0);
                                continue;
                            }
                            const std::size_t base = (gx * w + ty0) * l + z;
                            lane_ops.sub_cvt_strided(row, pd + base, po + base, l, inb_y);
                            std::fill(row + inb_y, row + stage_extent, 0.0);
                        }
                    }
                    blk.add_iters(blk.num_threads());

                    if (is_center && do_deriv) {
                        // --- stage orig/dec tiles with a +/-1 halo for the
                        // derivative stencils (x/y neighbours from shared,
                        // z neighbours straight from coalesced global).
                        // Same collective-staging shape as the error tile:
                        // count the in-bounds halo'd cells, charge each input
                        // once, write rows with bulk stores.
                        std::size_t inb_x = 0, inb_y = 0;
                        for (std::uint32_t dx = 0; dx < kTile + 2; ++dx) {
                            const std::size_t gx = tx0 + dx;
                            if (gx >= 1 && gx - 1 < h) ++inb_x;
                        }
                        for (std::uint32_t dy = 0; dy < kTile + 2; ++dy) {
                            const std::size_t gy = ty0 + dy;
                            if (gy >= 1 && gy - 1 < w) ++inb_y;
                        }
                        const float* po = dorig.ld_footprint(inb_x * inb_y);
                        const float* pd = ddec.ld_footprint(inb_x * inb_y);
                        for (std::uint32_t dx = 0; dx < kTile + 2; ++dx) {
                            double* ro = tile_o.st_bulk(std::size_t{dx} * (kTile + 2), kTile + 2);
                            double* rd = tile_d.st_bulk(std::size_t{dx} * (kTile + 2), kTile + 2);
                            const std::size_t gx = tx0 + dx;
                            if (gx < 1 || gx - 1 >= h) {
                                std::fill_n(ro, kTile + 2, 0.0);
                                std::fill_n(rd, kTile + 2, 0.0);
                                continue;
                            }
                            // In-bounds dy is the contiguous run
                            // [dy_lo, dy_hi): gy >= 1 only binds at ty0 == 0.
                            const std::uint32_t dy_lo = ty0 == 0 ? 1 : 0;
                            const std::size_t dy_hi =
                                std::min<std::size_t>(kTile + 2, w + 1 - ty0);
                            const std::size_t base2 = gidx(gx - 1, ty0 + dy_lo - 1, z);
                            std::fill_n(ro, dy_lo, 0.0);
                            std::fill_n(rd, dy_lo, 0.0);
                            lane_ops.cvt_strided(ro + dy_lo, po + base2, l, dy_hi - dy_lo);
                            lane_ops.cvt_strided(rd + dy_lo, pd + base2, l, dy_hi - dy_lo);
                            std::fill(ro + dy_hi, ro + kTile + 2, 0.0);
                            std::fill(rd + dy_hi, rd + kTile + 2, 0.0);
                        }
                        // Row-form stencil: every interior predicate except
                        // the y range is uniform along a thread row (fixed
                        // tid.x), so each interior row is one fused
                        // p2_deriv_row call over its contiguous y lanes.
                        const std::size_t gz = z + z_off;
                        const bool z_ok = gz >= rz.begin && gz < rz.end &&
                                          z >= zc_begin && z < zc_end;
                        const std::size_t gy_lo = std::max<std::size_t>(ry.begin, ty0);
                        const std::size_t gy_hi =
                            std::min<std::size_t>(ry.end, ty0 + kTile);
                        if (z_ok && gy_hi > gy_lo) {
                            const std::size_t x_lo = std::max<std::size_t>(rx.begin, tx0);
                            const std::size_t x_hi =
                                std::min<std::size_t>(rx.end, tx0 + kTile);
                            const auto nl = static_cast<std::uint32_t>(gy_hi - gy_lo);
                            // Shared-tile loads charged per interior thread,
                            // exactly as the per-thread neighbour reads:
                            // centre + 2 per active x/y axis, per tile.
                            const std::uint32_t tile_lds =
                                (rx.active ? 2u : 0u) + (ry.active ? 2u : 0u) + 1u;
                            const std::size_t ly_lo = gy_lo - ty0 + 1;  // halo'd col
                            double ozm[kTile], ozp[kTile], dzm[kTile], dzp[kTile];
                            double mo1[kTile], md1[kTile];
                            for (std::size_t gx = x_lo; gx < x_hi; ++gx) {
                                const std::size_t lx = gx - tx0 + 1;  // halo'd row
                                const double* to =
                                    tile_o.ld_charge(std::size_t{nl} * tile_lds);
                                const double* td =
                                    tile_d.ld_charge(std::size_t{nl} * tile_lds);
                                const std::size_t idx_lo = gidx(gx, gy_lo, z);
                                if (rz.active) {
                                    dorig.ld_lanes(idx_lo - 1, l, nl, ozm);
                                    dorig.ld_lanes(idx_lo + 1, l, nl, ozp);
                                    ddec.ld_lanes(idx_lo - 1, l, nl, dzm);
                                    ddec.ld_lanes(idx_lo + 1, l, nl, dzp);
                                }
                                simd::P2DerivRow row{};
                                row.oc = to + lx * (kTile + 2) + ly_lo;
                                row.dc = td + lx * (kTile + 2) + ly_lo;
                                if (rx.active) {
                                    row.oxm = to + (lx - 1) * (kTile + 2) + ly_lo;
                                    row.oxp = to + (lx + 1) * (kTile + 2) + ly_lo;
                                    row.dxm = td + (lx - 1) * (kTile + 2) + ly_lo;
                                    row.dxp = td + (lx + 1) * (kTile + 2) + ly_lo;
                                }
                                if (rz.active) {
                                    row.ozm = ozm;
                                    row.ozp = ozp;
                                    row.dzm = dzm;
                                    row.dzp = dzp;
                                }
                                row.have_x = rx.active;
                                row.have_y = ry.active;
                                row.have_z = rz.active;
                                row.do_order1 = do_order1;
                                row.do_order2 = do_order2;
                                row.acc = &slab[0][(gx - tx0) * kTile + (gy_lo - ty0)];
                                row.acc_stride = std::size_t{kTile} * kTile;
                                if (do_order1) {
                                    row.mo1 = mo1;
                                    row.md1 = md1;
                                }
                                row.n = nl;
                                lane_ops.p2_deriv_row(row);
                                if (do_order1) {
                                    der_o.st_lanes(idx_lo, l, nl, mo1);
                                    der_d.st_lanes(idx_lo, l, nl, md1);
                                }
                                blk.add_ops(std::uint64_t{60} * nl);
                            }
                        }
                    }

                    // --- autocorrelation terms, one fused lane call per
                    // (row, lag, term). The lane (y) bound gy < y_lim is the
                    // only per-thread predicate; everything else is uniform
                    // along a row, so each term is a contiguous lane prefix.
                    if (lag_count > 0) {
                        const std::size_t nrow = std::min<std::size_t>(kTile, h - tx0);
                        const std::size_t n0 = std::min<std::size_t>(kTile, w - ty0);
                        const std::size_t gz = z + z_off;
                        const bool xy_slice_ok = is_center && z >= zc_begin && z < zc_end;
                        double cur[kTile];
                        for (std::size_t tx = 0; tx < nrow; ++tx) {
                            const std::size_t gx = tx0 + tx;
                            lane_ops.sub_scalar(cur, ehalo.ld_bulk(tx * eh, n0), err_mean,
                                                n0);
                            for (std::uint32_t lag = 1; lag <= lag_count; ++lag) {
                                const LagInfo& li = lag_tab[lag - 1];
                                if (!li.any) continue;
                                const auto tau = static_cast<std::size_t>(lag);
                                double* arow = &slab[kLagBase + lag - 1][tx * kTile];
                                const std::size_t len =
                                    li.y_lim > ty0
                                        ? std::min<std::size_t>(n0, li.y_lim - ty0)
                                        : 0;
                                // x/y terms for centres in the current slice.
                                if (xy_slice_ok && gx < li.x_lim && gz < li.z_lim &&
                                    len > 0) {
                                    const double* xnb =
                                        li.ax ? ehalo.ld_bulk((tx + tau) * eh, len)
                                              : nullptr;
                                    const double* ynb =
                                        li.ay ? ehalo.ld_bulk(tx * eh + tau, len)
                                              : nullptr;
                                    lane_ops.p2_lag_xy(arow, cur, xnb, ynb, err_mean,
                                                       li.inv_valid, len);
                                }
                                // Deferred z term: centre slice z - tau pairs with
                                // the current slice through the FIFO of error tiles.
                                if (li.az && z >= tau) {
                                    const std::size_t zc = z - tau;
                                    if (zc >= z0 && zc < z1 && zc >= zc_begin &&
                                        zc < zc_end && gx < li.x_lim && len > 0 &&
                                        zc + z_off < l_g - tau) {
                                        const double* oldr = fifo.ld_bulk(
                                            (zc % (halo + 1)) * kTile * kTile + tx * kTile,
                                            len);
                                        lane_ops.p2_lag_z(arow, cur, oldr, err_mean,
                                                          li.inv_valid, len);
                                    }
                                }
                            }
                            blk.add_ops(std::uint64_t{6} * lag_count * n0);
                        }
                    }

                    // --- push the centre error tile into the FIFO (one
                    // bulk read of the tile core, one bulk store of the
                    // ring slot — same bytes as the per-thread copy).
                    if (lag_count > 0) {
                        const double* src = ehalo.ld_footprint(std::size_t{kTile} * kTile);
                        double* dst = fifo.st_bulk((z % (halo + 1)) * kTile * kTile,
                                                   std::size_t{kTile} * kTile);
                        for (std::uint32_t tx = 0; tx < kTile; ++tx) {
                            for (std::uint32_t ty = 0; ty < kTile; ++ty) {
                                dst[std::size_t{tx} * kTile + ty] =
                                    src[std::size_t{tx} * eh + ty];
                            }
                        }
                    }
                }
            }
        }

        blk.for_each_thread([&](ThreadCtx& t) {
            for (std::uint32_t s = 0; s < nslots; ++s) {
                acc(t, s) = slab[s][std::size_t{t.tid.x} * kTile + t.tid.y];
            }
        });
        block_reduce_slots(blk, acc, nslots, op_of_slot);
        blk.for_each_thread([&](ThreadCtx& t) {
            if (t.linear == 0) {
                for (std::uint32_t s = 0; s < nslots; ++s) {
                    dpart.st(std::size_t{blk.block_idx().x} * nslots + s, acc(t, s));
                }
            }
        });
    });

    stats.coalescing = kPattern2Coalescing;
    stats.serialization = kPattern2Serialization;
    result.stats = stats;

    // Fold the per-block partials on the host (the cross-block reduction).
    const std::vector<double> part = d_part.download();
    result.totals.assign(nslots, 0.0);
    for (std::uint32_t s = 0; s < nslots; ++s) {
        result.totals[s] = slot_identity(op_of_slot(s));
    }
    for (std::uint32_t b = 0; b < grid; ++b) {
        for (std::uint32_t s = 0; s < nslots; ++s) {
            result.totals[s] = slot_combine(op_of_slot(s), result.totals[s],
                                            part[std::size_t{b} * nslots + s]);
        }
    }

    // A subdomain result stays raw; the multi-device coordinator merges the
    // totals of all slabs and finalizes against the global dimensions.
    if (opt.sub.l_global == 0) {
        finalize_pattern2(result.totals, dims, cfg, moments, do_order1, do_order2,
                          lag_count > 0, result.report);
    }
    return result;
}

void finalize_pattern2(const std::vector<double>& totals, const zc::Dims3& global_dims,
                       const zc::MetricsConfig& cfg, const zc::ErrorMoments& moments,
                       bool order1, bool order2, bool autocorr, zc::StencilReport& rep) {
    const std::size_t h = global_dims.h, w = global_dims.w, l = global_dims.l;
    const double count = totals[kCountSlot];
    if (count > 0) {
        if (order1) {
            rep.deriv1_avg_orig = totals[kSumO] / count;
            rep.deriv1_max_orig = totals[kMaxO];
            rep.deriv1_avg_dec = totals[kSumD] / count;
            rep.deriv1_max_dec = totals[kMaxD];
            rep.deriv1_mse = totals[kSumSqDiff] / count;
            rep.divergence_avg_orig = totals[kAxisO] / count;
            rep.divergence_avg_dec = totals[kAxisD] / count;
        }
        if (order2) {
            rep.deriv2_avg_orig = totals[kDerivSlots + kSumO] / count;
            rep.deriv2_max_orig = totals[kDerivSlots + kMaxO];
            rep.deriv2_avg_dec = totals[kDerivSlots + kSumD] / count;
            rep.deriv2_max_dec = totals[kDerivSlots + kMaxD];
            rep.deriv2_mse = totals[kDerivSlots + kSumSqDiff] / count;
            rep.laplacian_avg_orig = totals[kDerivSlots + kAxisO] / count;
            rep.laplacian_avg_dec = totals[kDerivSlots + kAxisD] / count;
        }
    }
    const auto lag_count = static_cast<std::uint32_t>(
        autocorr ? std::clamp(cfg.autocorr_max_lag, 0, kPattern2MaxLag) : 0);
    rep.autocorr.assign(autocorr && cfg.autocorr_max_lag > 0 ? cfg.autocorr_max_lag : 0, 0.0);
    for (std::uint32_t lag = 1; lag <= lag_count && kLagBase + lag - 1 < totals.size(); ++lag) {
        const auto tau = static_cast<std::size_t>(lag);
        const bool ax = h > tau, ay = w > tau, az = l > tau;
        if ((!ax && !ay && !az) || moments.var <= 0) continue;
        const double ne = static_cast<double>(ax ? h - tau : h) * (ay ? w - tau : w) *
                          (az ? l - tau : l);
        rep.autocorr[lag - 1] = totals[kLagBase + lag - 1] / ne / moments.var;
    }
}

Pattern2Result pattern2_fused(vgpu::Device& dev, const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                              const zc::MetricsConfig& cfg) {
    vgpu::DeviceBuffer<float> d_orig(dev, orig.data());
    vgpu::DeviceBuffer<float> d_dec(dev, dec.data());
    const zc::ErrorMoments m = error_moments_device(dev, d_orig, d_dec, orig.dims());
    return pattern2_fused_device(dev, d_orig, d_dec, orig.dims(), cfg, m);
}

}  // namespace cuzc::cuzc
