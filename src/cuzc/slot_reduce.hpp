#pragma once

#include <limits>

#include "vgpu/vgpu.hpp"

namespace cuzc::cuzc {

/// Reduction operator of one accumulator slot in a fused multi-metric
/// kernel.
enum class SlotOp { kSum, kMin, kMax };

[[nodiscard]] inline double slot_identity(SlotOp op) noexcept {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    switch (op) {
        case SlotOp::kMin: return kInf;
        case SlotOp::kMax: return -kInf;
        case SlotOp::kSum: return 0.0;
    }
    return 0.0;
}

[[nodiscard]] inline double slot_combine(SlotOp op, double a, double b) noexcept {
    switch (op) {
        case SlotOp::kMin: return a < b ? a : b;
        case SlotOp::kMax: return a > b ? a : b;
        case SlotOp::kSum: return a + b;
    }
    return a + b;
}

/// Block-level reduction of a multi-slot per-thread accumulator: warp
/// shuffles within each warp, per-warp partials staged through shared
/// memory, final shuffle reduction on warp 0 (Algorithm 1 ln. 7-16). After
/// the call, thread 0 of the block holds every slot's block-wide result.
/// `op_of(slot)` selects the reduction operator per slot.
template <class OpOf>
void block_reduce_slots(vgpu::BlockCtx& blk, vgpu::RegArray<double>& acc, std::uint32_t nslots,
                        OpOf op_of) {
    blk.for_each_warp([&](vgpu::WarpCtx& w) {
        for (std::uint32_t slot = 0; slot < nslots; ++slot) {
            const SlotOp op = op_of(slot);
            w.reduce_shfl_down(acc, slot,
                               [op](double a, double b) { return slot_combine(op, a, b); });
        }
    });
    auto warp_out = blk.shared().alloc<double>(std::size_t{nslots} * blk.num_warps());
    blk.for_each_thread([&](vgpu::ThreadCtx& t) {
        if (t.lane == 0) {
            for (std::uint32_t slot = 0; slot < nslots; ++slot) {
                warp_out.st(t.warp * nslots + slot, acc(t, slot));
            }
        }
    });
    const std::uint32_t nwarps = blk.num_warps();
    blk.for_each_warp([&](vgpu::WarpCtx& w) {
        if (w.warp_id() != 0) return;
        const std::uint32_t mask = w.ballot([&](std::uint32_t lane) { return lane < nwarps; });
        for (std::uint32_t lane = 0; lane < w.active_lanes(); ++lane) {
            for (std::uint32_t slot = 0; slot < nslots; ++slot) {
                acc.at(lane, slot) = lane < nwarps ? warp_out.ld(lane * nslots + slot)
                                                   : slot_identity(op_of(slot));
            }
        }
        for (std::uint32_t slot = 0; slot < nslots; ++slot) {
            const SlotOp op = op_of(slot);
            w.reduce_shfl_down(acc, slot,
                               [op](double a, double b) { return slot_combine(op, a, b); }, mask);
        }
    });
}

}  // namespace cuzc::cuzc
