#pragma once

#include <limits>

#include "vgpu/vgpu.hpp"

namespace cuzc::cuzc {

/// Reduction operator of one accumulator slot in a fused multi-metric
/// kernel.
enum class SlotOp { kSum, kMin, kMax };

[[nodiscard]] inline double slot_identity(SlotOp op) noexcept {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    switch (op) {
        case SlotOp::kMin: return kInf;
        case SlotOp::kMax: return -kInf;
        case SlotOp::kSum: return 0.0;
    }
    return 0.0;
}

[[nodiscard]] inline double slot_combine(SlotOp op, double a, double b) noexcept {
    switch (op) {
        case SlotOp::kMin: return a < b ? a : b;
        case SlotOp::kMax: return a > b ? a : b;
        case SlotOp::kSum: return a + b;
    }
    return a + b;
}

/// Fixed-tree warp reduction of one slot via the SIMD lane engine. The
/// pairwise order (off = 16,8,4,2,1; fold lane l with l+off when both < n)
/// is exactly the fold sequence `WarpCtx::reduce_shfl_down` performs over a
/// full mask of n active lanes (or a prefix ballot mask of n lanes), so the
/// lane-0 result is bit-identical to the shuffle ladder on every backend.
[[nodiscard]] inline double lane_reduce_slot(SlotOp op, const double* lanes,
                                             std::uint32_t n) noexcept {
    switch (op) {
        case SlotOp::kMin: return vgpu::lane_reduce_min(lanes, n);
        case SlotOp::kMax: return vgpu::lane_reduce_max(lanes, n);
        case SlotOp::kSum: return vgpu::lane_reduce_sum(lanes, n);
    }
    return vgpu::lane_reduce_sum(lanes, n);
}

/// Block-level reduction of a multi-slot per-thread accumulator: warp-tree
/// reduction within each warp, per-warp partials staged through shared
/// memory, final tree reduction on warp 0 (Algorithm 1 ln. 7-16). After
/// the call, thread 0 of the block holds every slot's block-wide result.
/// `op_of(slot)` selects the reduction operator per slot.
///
/// Both stages run on `lane_reduce_slot` and bulk-charge what the
/// per-offset `reduce_shfl_down` ladder charges: five rounds of one shuffle
/// plus one lane op per active lane, per slot — counters and results are
/// bit-identical to the pre-SIMD shuffle loops.
template <class OpOf>
void block_reduce_slots(vgpu::BlockCtx& blk, vgpu::RegArray<double>& acc, std::uint32_t nslots,
                        OpOf op_of) {
    blk.for_each_warp([&](vgpu::WarpCtx& w) {
        const std::uint32_t lanes = w.active_lanes();
        const std::uint32_t base = w.base_linear();
        w.add_shuffles(std::uint64_t{5} * lanes * nslots);
        w.add_lane_ops(std::uint64_t{5} * lanes * nslots);
        double buf[vgpu::kWarpSize];
        for (std::uint32_t slot = 0; slot < nslots; ++slot) {
            for (std::uint32_t l = 0; l < lanes; ++l) buf[l] = acc.at(base + l, slot);
            acc.at(base, slot) = lane_reduce_slot(op_of(slot), buf, lanes);
        }
    });
    auto warp_out = blk.shared().alloc<double>(std::size_t{nslots} * blk.num_warps());
    blk.for_each_thread([&](vgpu::ThreadCtx& t) {
        if (t.lane == 0) {
            double* wp = warp_out.st_bulk(std::size_t{t.warp} * nslots, nslots);
            for (std::uint32_t slot = 0; slot < nslots; ++slot) wp[slot] = acc(t, slot);
        }
    });
    // Cross-warp reduction on warp 0: the per-warp partials form a prefix of
    // nwarps lanes (the seed's ballot mask), reduced with the same tree.
    const std::uint32_t nwarps = blk.num_warps();
    blk.for_each_warp([&](vgpu::WarpCtx& w) {
        if (w.warp_id() != 0) return;
        w.add_shuffles(std::uint64_t{5} * w.active_lanes() * nslots);
        w.add_lane_ops(std::uint64_t{5} * w.active_lanes() * nslots);
        const double* wo = warp_out.ld_footprint(std::size_t{nwarps} * nslots);
        double buf[vgpu::kWarpSize];
        for (std::uint32_t slot = 0; slot < nslots; ++slot) {
            for (std::uint32_t l = 0; l < nwarps; ++l) buf[l] = wo[l * nslots + slot];
            acc.at(0, slot) = lane_reduce_slot(op_of(slot), buf, nwarps);
        }
    });
}

}  // namespace cuzc::cuzc
