#pragma once

#include <span>
#include <vector>

#include "coordinator.hpp"
#include "zc/compression_stats.hpp"
#include "zc/metrics_config.hpp"
#include "zc/tensor.hpp"

namespace cuzc::cuzc {

/// Compressor integration — the paper's plan to "incorporate cuZ-Checker
/// with cuSZ to make the assessment more seamless": one call compresses,
/// decompresses, and assesses, returning the quality report together with
/// the compression-performance metrics.
struct PipelineResult {
    CuzcResult assessment;
    zc::CompressionStats compression;
    double effective_error_bound = 0;
};

/// Compress `orig` with the SZ-style codec at `rel_error_bound` (value-range
/// relative), decompress, and assess with every enabled metric.
[[nodiscard]] PipelineResult compress_and_assess(vgpu::Device& dev, const zc::Tensor3f& orig,
                                                 double rel_error_bound,
                                                 const zc::MetricsConfig& cfg);

/// Assess an already-compressed SZ stream against the original.
[[nodiscard]] PipelineResult assess_compressed(vgpu::Device& dev, const zc::Tensor3f& orig,
                                               std::span<const std::uint8_t> sz_stream,
                                               const zc::MetricsConfig& cfg);

/// Batch assessment of many (original, decompressed) field pairs of the
/// same shape — a dataset's fields, say — reusing one pair of device
/// buffers across the whole batch so each field costs two uploads and the
/// kernel launches, with no per-field allocation.
[[nodiscard]] std::vector<CuzcResult> assess_batch(
    vgpu::Device& dev, std::span<const zc::Field> originals,
    std::span<const zc::Field> decompressed, const zc::MetricsConfig& cfg);

}  // namespace cuzc::cuzc
