#pragma once

#include "vgpu/vgpu.hpp"
#include "zc/metrics_config.hpp"
#include "zc/report.hpp"
#include "zc/tensor.hpp"

namespace cuzc::cuzc {

struct Pattern3Result {
    zc::SsimReport report;
    vgpu::KernelStats stats;
};

/// Lane t reads element (i + t, y, k): consecutive lanes are l elements
/// apart in memory (x is the slowest axis), so slice loads are strided.
inline constexpr double kPattern3Coalescing = 0.35;
/// The SSIM kernel's per-slice shuffle ladder is a serial dependency chain
/// bracketed by __syncthreads; its pipelines stall far below peak issue.
inline constexpr double kPattern3Serialization = 5.5;

struct Pattern3Options {
    /// true  -> the paper's cuZC kernel: per-slice reduction results stream
    ///          through a shared-memory FIFO ring, so every slice is read
    ///          from global memory and reduced exactly once (Algorithm 3);
    /// false -> the moZC baseline: no FIFO; every window position along z
    ///          re-reads and re-reduces its wsize slices.
    bool use_fifo = true;
};

/// The paper's Algorithm 3: windowed 3-D SSIM. One thread block per group
/// of y-window rows; within a warp, lanes own the window positions along x
/// and ghost regions are shared through warp shuffles (supporting arbitrary
/// step); the y-direction window reduction goes through shared memory; the
/// z-direction streams slices through the FIFO ring of intermediate
/// reduction results.
[[nodiscard]] Pattern3Result pattern3_ssim_device(vgpu::Device& dev,
                                                  const vgpu::DeviceBuffer<float>& d_orig,
                                                  const vgpu::DeviceBuffer<float>& d_dec,
                                                  const zc::Dims3& dims,
                                                  const zc::MetricsConfig& cfg,
                                                  const Pattern3Options& opt = {});

[[nodiscard]] Pattern3Result pattern3_ssim(vgpu::Device& dev, const zc::Tensor3f& orig,
                                           const zc::Tensor3f& dec, const zc::MetricsConfig& cfg,
                                           const Pattern3Options& opt = {});

}  // namespace cuzc::cuzc
