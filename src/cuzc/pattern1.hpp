#pragma once

#include <vector>

#include "vgpu/vgpu.hpp"
#include "zc/metrics_config.hpp"
#include "zc/reduction_metrics.hpp"
#include "zc/report.hpp"
#include "zc/tensor.hpp"

namespace cuzc::cuzc {

/// Histogram bin ranges, when supplied externally (multi-device mode: the
/// global min/max come from an allreduce over per-device reductions).
struct Pattern1Ranges {
    double min_err = 0, max_err = 0;
    double min_pwr = 0, max_pwr = 0;
    double min_val = 0, max_val = 0;
};

struct Pattern1Options {
    bool reductions = true;
    bool histograms = true;
    /// When set, the histogram phase bins against these ranges instead of
    /// this launch's own phase-2 results.
    const Pattern1Ranges* fixed_ranges = nullptr;
    /// Restrict the launch to z-slices [z_begin, min(z_end, dims.l)). The
    /// multi-GPU path keeps one halo'd slab resident per device and points
    /// pattern 1 at the slab's centre z-range so the same upload feeds
    /// patterns 1 and 2. Defaults cover the whole volume.
    std::size_t z_begin = 0;
    std::size_t z_end = static_cast<std::size_t>(-1);
};

/// Result of the fused pattern-1 kernel plus the profile of its single
/// cooperative launch. `moments` and `raw_hist` are the mergeable raw
/// outputs the multi-GPU coordinator combines across devices.
struct Pattern1Result {
    zc::ReductionReport report;
    zc::ReductionMoments moments;
    /// Raw bin counts: [0,bins) error PDF, [bins,2*bins) pwr-error PDF,
    /// [2*bins,3*bins) value histogram (entropy input).
    std::vector<double> raw_hist;
    vgpu::KernelStats stats;
};

/// Effective DRAM-coalescing of the slice-per-block access pattern: thread
/// (tidx, tidy) walks (i, j, bidx) with z (= bidx) fixed, so consecutive
/// lanes touch addresses l elements apart — only a fraction of each 32-byte
/// sector is useful. Feeds the cost model's memory term.
inline constexpr double kPattern1Coalescing = 0.62;
/// Streaming reductions pipeline well; mild stalls at the shuffle ladders.
inline constexpr double kPattern1Serialization = 1.2;

/// The paper's Algorithm 1: one cooperative kernel launch computes every
/// category-I metric. The grid has one thread block per z-slice; each block
/// reduces its slice with intra-thread strided loops, warp shuffles, and a
/// cross-warp shared-memory step; a grid sync then lets block 0 fold the
/// per-slice partials; a second grid-synced phase fills the three
/// histograms (error PDF, pwr-error PDF, value histogram for entropy) using
/// the min/max results of the first phase, so the whole category still
/// costs one launch.
[[nodiscard]] Pattern1Result pattern1_fused(vgpu::Device& dev, const zc::Tensor3f& orig,
                                            const zc::Tensor3f& dec,
                                            const zc::MetricsConfig& cfg);

/// Same kernel driven from already-uploaded device buffers (used by the
/// coordinator to avoid repeated H2D transfers across patterns).
[[nodiscard]] Pattern1Result pattern1_fused_device(vgpu::Device& dev,
                                                   const vgpu::DeviceBuffer<float>& d_orig,
                                                   const vgpu::DeviceBuffer<float>& d_dec,
                                                   const zc::Dims3& dims,
                                                   const zc::MetricsConfig& cfg,
                                                   const Pattern1Options& opt = {});

}  // namespace cuzc::cuzc
