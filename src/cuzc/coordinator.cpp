#include "coordinator.hpp"

#include <algorithm>

namespace cuzc::cuzc {

CuzcResult assess(vgpu::Device& dev, const zc::Tensor3f& orig, const zc::Tensor3f& dec,
                  const zc::MetricsConfig& cfg, const Pattern3Options& p3_opt) {
    if (orig.size() == 0 || orig.size() != dec.size()) return CuzcResult{};

    vgpu::DeviceBuffer<float> d_orig(dev, orig.data());
    vgpu::DeviceBuffer<float> d_dec(dev, dec.data());
    return assess_device(dev, d_orig, d_dec, orig.dims(), cfg, p3_opt);
}

CuzcResult assess(vgpu::Device& dev, const zc::FieldRef& orig, const zc::FieldRef& dec,
                  const zc::MetricsConfig& cfg, const Pattern3Options& p3_opt) {
    if (orig.size() == 0 || orig.size() != dec.size()) return CuzcResult{};

    // Same modeled alloc/transfer/fault sequence as the copying overload
    // above; `adopt` just aliases the payload instead of memcpy-ing it.
    vgpu::DeviceBuffer<float> d_orig(dev, orig.size());
    d_orig.adopt(orig);
    vgpu::DeviceBuffer<float> d_dec(dev, dec.size());
    d_dec.adopt(dec);
    return assess_device(dev, d_orig, d_dec, orig.dims(), cfg, p3_opt);
}

CuzcResult assess_device(vgpu::Device& dev, const vgpu::DeviceBuffer<float>& d_orig,
                         const vgpu::DeviceBuffer<float>& d_dec, const zc::Dims3& dims,
                         const zc::MetricsConfig& cfg, const Pattern3Options& p3_opt) {
    CuzcResult result;
    if (dims.volume() == 0 || d_orig.size() != dims.volume() || d_dec.size() != dims.volume()) {
        return result;
    }

    bool have_moments = false;
    zc::ErrorMoments moments;

    if (cfg.pattern1) {
        Pattern1Result p1 = pattern1_fused_device(dev, d_orig, d_dec, dims, cfg);
        result.report.reduction = p1.report;
        result.pattern1 = p1.stats;
        // Data reuse across patterns: E[e] and Var[e] fall out of the fused
        // reductions (avg error and MSE - avg^2).
        moments.mean = p1.report.avg_err;
        moments.var = std::max(0.0, p1.report.mse - p1.report.avg_err * p1.report.avg_err);
        have_moments = true;
    }
    if (cfg.pattern2) {
        if (!have_moments) {
            moments = error_moments_device(dev, d_orig, d_dec, dims);
            result.pattern2 = dev.profiler().records().back();
        }
        Pattern2Result p2 = pattern2_fused_device(dev, d_orig, d_dec, dims, cfg, moments);
        result.report.stencil = p2.report;
        if (result.pattern2.launches > 0) {
            result.pattern2.merge(p2.stats);
            result.pattern2.name = p2.stats.name;
        } else {
            result.pattern2 = p2.stats;
        }
    }
    if (cfg.pattern3) {
        Pattern3Result p3 = pattern3_ssim_device(dev, d_orig, d_dec, dims, cfg, p3_opt);
        result.report.ssim = p3.report;
        result.pattern3 = p3.stats;
    }
    return result;
}

}  // namespace cuzc::cuzc
