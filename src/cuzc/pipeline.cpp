#include "pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sz/sz_compressor.hpp"

namespace cuzc::cuzc {

namespace {

PipelineResult assess_pair(vgpu::Device& dev, const zc::Tensor3f& orig, const zc::Field& dec,
                           const zc::MetricsConfig& cfg, zc::CompressionStats stats,
                           double bound) {
    PipelineResult out;
    out.assessment = assess(dev, orig, dec.view(), cfg);
    out.compression = stats;
    out.effective_error_bound = bound;
    return out;
}

}  // namespace

PipelineResult compress_and_assess(vgpu::Device& dev, const zc::Tensor3f& orig,
                                   double rel_error_bound, const zc::MetricsConfig& cfg) {
    sz::SzConfig scfg;
    scfg.use_rel_bound = true;
    scfg.rel_error_bound = rel_error_bound;

    zc::CompressionStats stats;
    stats.raw_bytes = orig.size() * sizeof(float);
    const zc::Stopwatch comp_watch;
    const sz::SzCompressed comp = sz::compress(orig, scfg);
    stats.compress_seconds = comp_watch.seconds();
    stats.compressed_bytes = comp.bytes.size();

    const zc::Stopwatch decomp_watch;
    const zc::Field dec = sz::decompress(comp.bytes);
    stats.decompress_seconds = decomp_watch.seconds();

    return assess_pair(dev, orig, dec, cfg, stats, comp.effective_error_bound);
}

PipelineResult assess_compressed(vgpu::Device& dev, const zc::Tensor3f& orig,
                                 std::span<const std::uint8_t> sz_stream,
                                 const zc::MetricsConfig& cfg) {
    zc::CompressionStats stats;
    stats.raw_bytes = orig.size() * sizeof(float);
    stats.compressed_bytes = sz_stream.size();
    const zc::Stopwatch decomp_watch;
    const zc::Field dec = sz::decompress(sz_stream);
    stats.decompress_seconds = decomp_watch.seconds();
    if (dec.dims() != orig.dims()) {
        throw std::invalid_argument("assess_compressed: stream shape mismatch");
    }
    return assess_pair(dev, orig, dec, cfg, stats, 0.0);
}

std::vector<CuzcResult> assess_batch(vgpu::Device& dev, std::span<const zc::Field> originals,
                                     std::span<const zc::Field> decompressed,
                                     const zc::MetricsConfig& cfg) {
    std::vector<CuzcResult> results;
    const std::size_t n = std::min(originals.size(), decompressed.size());
    if (n == 0) return results;
    const zc::Dims3 dims = originals[0].dims();
    // One device-resident buffer pair serves the whole batch.
    vgpu::DeviceBuffer<float> d_orig(dev, dims.volume());
    vgpu::DeviceBuffer<float> d_dec(dev, dims.volume());

    results.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (originals[i].dims() != dims || decompressed[i].dims() != dims) {
            throw std::invalid_argument("assess_batch: all fields must share one shape");
        }
        d_orig.upload(originals[i].data());
        d_dec.upload(decompressed[i].data());
        results.push_back(assess_device(dev, d_orig, d_dec, dims, cfg));
    }
    return results;
}

}  // namespace cuzc::cuzc
