#pragma once

/// Umbrella header for cuZ-Checker — the paper's contribution: the
/// pattern-oriented GPU assessment system (coordinator + three fused
/// pattern kernels) running on the virtual GPU runtime.

#include "classify.hpp"     // IWYU pragma: export
#include "coordinator.hpp"  // IWYU pragma: export
#include "multigpu.hpp"     // IWYU pragma: export
#include "pattern1.hpp"     // IWYU pragma: export
#include "pipeline.hpp"     // IWYU pragma: export
#include "pattern2.hpp"     // IWYU pragma: export
#include "pattern3.hpp"     // IWYU pragma: export
